//! A tiny blocking HTTP client for the daemon.
//!
//! Deliberately minimal and dependency-free, like the server's HTTP
//! layer: one request per connection, `Content-Length` or chunked
//! response bodies. It exists so the `client` example, the
//! integration tests, and `repro client` all drive the daemon through
//! the same code path instead of three hand-rolled socket loops.

use crate::error::ServeError;
use crate::http::read_chunked;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The decoded body (chunked bodies are de-framed).
    pub body: String,
}

impl Response {
    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the body is not JSON.
    pub fn json(&self) -> Result<Value, ServeError> {
        serde_json::from_str(&self.body)
            .map_err(|e| ServeError::BadRequest(format!("response is not JSON: {e}")))
    }
}

/// Send one request and read the full response.
///
/// # Errors
///
/// [`ServeError::Io`] on connection trouble and
/// [`ServeError::BadRequest`] on unparseable response framing.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream))
}

/// Parse a status line + headers + body from `r`.
///
/// # Errors
///
/// As [`request`].
pub fn read_response(r: &mut impl BufRead) -> Result<Response, ServeError> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            ServeError::BadRequest(format!("malformed status line `{}`", line.trim()))
        })?;
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().ok(),
                "transfer-encoding" if value.trim().eq_ignore_ascii_case("chunked") => {
                    chunked = true;
                }
                _ => {}
            }
        }
    }
    let body = if chunked {
        read_chunked(r)?
    } else if let Some(len) = content_length {
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)
            .map_err(|_| ServeError::BadRequest("response body truncated".into()))?;
        buf
    } else {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        buf
    };
    Ok(Response {
        status,
        body: String::from_utf8(body)
            .map_err(|_| ServeError::BadRequest("response body is not UTF-8".into()))?,
    })
}

/// Submit a job request and return `(job id, submit response)`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] when the daemon refuses the submission
/// (carrying its status and body), plus the [`request`] errors.
pub fn submit(addr: &str, job_json: &str) -> Result<(String, Response), ServeError> {
    let resp = request(addr, "POST", "/jobs", Some(job_json))?;
    if resp.status != 200 && resp.status != 202 {
        return Err(ServeError::BadRequest(format!(
            "submission refused: HTTP {}: {}",
            resp.status, resp.body
        )));
    }
    let id = resp
        .json()?
        .member("job")
        .and_then(|v| v.as_str().map(String::from))
        .map_err(ServeError::BadRequest)?;
    Ok((id, resp))
}

/// Poll `GET /jobs/<id>` until the job finishes, returning the result
/// document (HTTP 200 body).
///
/// # Errors
///
/// [`ServeError::BadRequest`] when the job fails, is unknown, or
/// `timeout` elapses first.
pub fn wait_for_result(addr: &str, job: &str, timeout: Duration) -> Result<String, ServeError> {
    // xps-allow(no-wallclock-in-deterministic-paths): client-side poll deadline; results come from the store, not the clock
    let deadline = Instant::now() + timeout;
    loop {
        let resp = request(addr, "GET", &format!("/jobs/{job}"), None)?;
        match resp.status {
            200 => return Ok(resp.body),
            202 => {}
            other => {
                return Err(ServeError::BadRequest(format!(
                    "job `{job}` did not complete: HTTP {other}: {}",
                    resp.body
                )))
            }
        }
        // xps-allow(no-wallclock-in-deterministic-paths): client-side poll deadline; results come from the store, not the clock
        if Instant::now() >= deadline {
            return Err(ServeError::BadRequest(format!(
                "job `{job}` still pending after {timeout:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Stream up to `max_lines` NDJSON progress lines from
/// `GET /jobs/<id>/events`, invoking `on_line` per line, until the
/// feed closes or the cap is reached.
///
/// # Errors
///
/// As [`request`].
pub fn stream_events(
    addr: &str,
    job: &str,
    max_lines: usize,
    mut on_line: impl FnMut(&str),
) -> Result<usize, ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    write!(
        stream,
        "GET /jobs/{job}/events HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut r = BufReader::new(stream);
    let resp = read_response(&mut r)?;
    if resp.status != 200 {
        return Err(ServeError::BadRequest(format!(
            "event stream refused: HTTP {}: {}",
            resp.status, resp.body
        )));
    }
    let mut n = 0;
    for line in resp.body.lines().take(max_lines) {
        on_line(line);
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_content_length_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let r = read_response(&mut Cursor::new(&raw[..])).expect("parses");
        assert_eq!((r.status, r.body.as_str()), (200, "{}"));
    }

    #[test]
    fn parses_chunked_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let r = read_response(&mut Cursor::new(&raw[..])).expect("parses");
        assert_eq!((r.status, r.body.as_str()), (200, "abc"));
    }

    #[test]
    fn rejects_garbage_status_line() {
        let e = read_response(&mut Cursor::new(&b"not http\r\n\r\n"[..])).expect_err("garbage");
        assert!(e.to_string().contains("status line"));
    }
}
