//! The fleet's wire layer: one trait, a real TCP implementation, and
//! a deterministic fault-injecting wrapper.
//!
//! The coordinator never touches sockets directly — it talks through
//! [`Transport`], so tests swap in an in-process implementation and
//! the fault harness wraps the real one. [`TcpTransport`] is the
//! production path: bounded connect, read, and write timeouts on every
//! round-trip, so a hung or half-dead worker surfaces as a timeout
//! error instead of wedging the coordinator. [`FlakyTransport`]
//! injects the [`NetFaultPlan`]'s seeded misbehavior around any inner
//! transport.

use crate::client::{read_response, Response};
use crate::error::ServeError;
use crate::netfault::{NetFault, NetFaultPlan};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One blocking HTTP round-trip to a worker.
///
/// `fault_key` names the round-trip for deterministic fault selection
/// (`"<task key>@<attempt>"`, `"hb/<addr>/<n>"`); real transports
/// ignore it.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Send `method path` with `body` to `addr` and read the full
    /// response, bounding every socket operation by `timeout`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connect/read/write trouble (including
    /// timeouts) and [`ServeError::BadRequest`] on unparseable
    /// response framing.
    fn roundtrip(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
        fault_key: &str,
    ) -> Result<Response, ServeError>;
}

/// The production transport: plain TCP with explicit deadlines.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    /// Bound on establishing the connection (hang detection for dead
    /// or unroutable workers).
    pub connect_timeout: Duration,
}

impl Default for TcpTransport {
    fn default() -> TcpTransport {
        TcpTransport {
            connect_timeout: Duration::from_secs(2),
        }
    }
}

impl Transport for TcpTransport {
    fn roundtrip(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
        _fault_key: &str,
    ) -> Result<Response, ServeError> {
        let target = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ServeError::BadRequest(format!("worker address `{addr}` resolves to nothing"))
        })?;
        let mut stream = TcpStream::connect_timeout(&target, self.connect_timeout)?;
        // A worker that accepts the connection and then hangs must
        // surface as a timeout, not wedge the coordinator's pool slot.
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
        stream.flush()?;
        read_response(&mut std::io::BufReader::new(stream))
    }
}

/// A transport that deterministically misbehaves per its
/// [`NetFaultPlan`], wrapping any inner transport.
#[derive(Debug)]
pub struct FlakyTransport<T: Transport> {
    plan: NetFaultPlan,
    inner: T,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wrap `inner` with `plan`'s fault schedule.
    pub fn new(plan: NetFaultPlan, inner: T) -> FlakyTransport<T> {
        FlakyTransport { plan, inner }
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn roundtrip(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
        fault_key: &str,
    ) -> Result<Response, ServeError> {
        match self.plan.injects(fault_key) {
            Some(NetFault::Drop) => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("injected drop of `{fault_key}`"),
            ))),
            Some(NetFault::Delay) => {
                std::thread::sleep(Duration::from_millis(self.plan.delay_ms()));
                self.inner
                    .roundtrip(addr, method, path, body, timeout, fault_key)
            }
            Some(NetFault::Truncate) => {
                let mut resp = self
                    .inner
                    .roundtrip(addr, method, path, body, timeout, fault_key)?;
                resp.body.truncate(resp.body.len() / 2);
                Ok(resp)
            }
            Some(NetFault::Duplicate) => {
                // The worker sees the request twice; a correct worker
                // answers both identically (store memoization), and the
                // caller consumes the second response.
                let _first = self
                    .inner
                    .roundtrip(addr, method, path, body, timeout, fault_key);
                self.inner
                    .roundtrip(addr, method, path, body, timeout, fault_key)
            }
            Some(NetFault::Garbage) => {
                let mut resp = self
                    .inner
                    .roundtrip(addr, method, path, body, timeout, fault_key)?;
                resp.body = format!("<<garbled response to `{fault_key}`//");
                Ok(resp)
            }
            None => self
                .inner
                .roundtrip(addr, method, path, body, timeout, fault_key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// An inner transport that always answers 200 with a fixed body
    /// and counts its round-trips.
    #[derive(Debug, Default)]
    struct Fixed {
        calls: AtomicU64,
    }

    impl Transport for Fixed {
        fn roundtrip(
            &self,
            _addr: &str,
            _method: &str,
            _path: &str,
            _body: Option<&str>,
            _timeout: Duration,
            _fault_key: &str,
        ) -> Result<Response, ServeError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(Response {
                status: 200,
                body: "{\"ok\":true}".to_string(),
            })
        }
    }

    fn flaky(spec: &str) -> FlakyTransport<Fixed> {
        FlakyTransport::new(NetFaultPlan::parse(spec).expect("parses"), Fixed::default())
    }

    /// A key the 100%-rate plan maps to the wanted fault.
    fn probe(t: &FlakyTransport<Fixed>, key: &str) -> Result<Response, ServeError> {
        t.roundtrip(
            "127.0.0.1:1",
            "GET",
            "/healthz",
            None,
            Duration::from_secs(1),
            key,
        )
    }

    #[test]
    fn drop_truncate_and_garbage_corrupt_the_response() {
        let e = probe(&flaky("drop=100"), "k").expect_err("dropped");
        assert!(e.to_string().contains("injected drop"));
        assert_eq!(flaky("drop=100").inner.calls.load(Ordering::Relaxed), 0);

        let r = probe(&flaky("truncate=100"), "k").expect("answers");
        assert_eq!(r.body, "{\"ok\"");
        assert!(serde_json::from_str::<serde::Value>(&r.body).is_err());

        let r = probe(&flaky("garbage=100"), "k").expect("answers");
        assert!(serde_json::from_str::<serde::Value>(&r.body).is_err());
    }

    #[test]
    fn duplicate_sends_the_request_twice() {
        let t = flaky("duplicate=100");
        let r = probe(&t, "k").expect("answers");
        assert_eq!(r.body, "{\"ok\":true}");
        assert_eq!(t.inner.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn inert_plan_passes_through() {
        let t = FlakyTransport::new(NetFaultPlan::inert(), Fixed::default());
        let r = probe(&t, "k").expect("answers");
        assert_eq!((r.status, r.body.as_str()), (200, "{\"ok\":true}"));
        assert_eq!(t.inner.calls.load(Ordering::Relaxed), 1);
    }
}
