//! Daemon-wide observability counters.
//!
//! Everything `/metrics` reports lives here: job lifecycle counters,
//! store and coalescing hits, accumulated engine counters (evaluation
//! cache, journal replays), and a fixed-bucket latency histogram per
//! endpoint. All counters are relaxed atomics — recording a sample
//! never contends with request handling.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;
use xps_core::explore::EngineStats;
use xps_core::trace::Profile;

/// Histogram bucket upper bounds, microseconds (the last bucket is
/// unbounded).
pub const LATENCY_BUCKETS_US: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// The endpoints measured separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /jobs`
    Submit,
    /// `GET /jobs/<id>`
    Job,
    /// `GET /jobs/<id>/events`
    Events,
    /// `GET /metrics`
    Metrics,
    /// `POST /tasks` and `GET /tasks/<id>` (fleet worker execution).
    Task,
    /// Everything else (including errors).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 6] = [
        Endpoint::Submit,
        Endpoint::Job,
        Endpoint::Events,
        Endpoint::Metrics,
        Endpoint::Task,
        Endpoint::Other,
    ];

    fn label(&self) -> &'static str {
        match self {
            Endpoint::Submit => "submit",
            Endpoint::Job => "job",
            Endpoint::Events => "events",
            Endpoint::Metrics => "metrics",
            Endpoint::Task => "task",
            Endpoint::Other => "other",
        }
    }

    fn index(&self) -> usize {
        Endpoint::ALL
            .iter()
            .position(|e| e == self)
            // xps-allow(no-unwrap-in-lib): Endpoint::ALL enumerates every variant; position always finds self
            .expect("listed")
    }
}

#[derive(Debug, Default)]
struct Histogram {
    buckets: [AtomicU64; 5],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Histogram {
    fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us < b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            (
                "count".to_string(),
                Value::U64(self.count.load(Ordering::Relaxed)),
            ),
            (
                "total_us".to_string(),
                Value::U64(self.total_us.load(Ordering::Relaxed)),
            ),
        ];
        let labels = ["lt_1ms", "lt_10ms", "lt_100ms", "lt_1s", "ge_1s"];
        for (label, bucket) in labels.iter().zip(&self.buckets) {
            fields.push((
                (*label).to_string(),
                Value::U64(bucket.load(Ordering::Relaxed)),
            ));
        }
        Value::Obj(fields)
    }
}

/// All counters the daemon exposes.
#[derive(Debug, Default)]
pub struct Metrics {
    jobs_submitted: AtomicU64,
    jobs_coalesced: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_requeued: AtomicU64,
    store_hits: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    tasks_executed: AtomicU64,
    tasks_salvaged: AtomicU64,
    journal_replayed: AtomicU64,
    fleet_tasks_executed: AtomicU64,
    fleet_task_store_hits: AtomicU64,
    gc_evicted: AtomicU64,
    gc_reclaimed_bytes: AtomicU64,
    latency: [Histogram; 6],
    /// Accumulated span profiles of every campaign this process ran
    /// (merged per phase name). The lock is touched once per finished
    /// campaign and per `/metrics` render — never on a hot path.
    spans: Mutex<Profile>,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record an accepted new submission.
    pub fn submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a submission that coalesced onto an existing job.
    pub fn coalesced(&self) {
        self.jobs_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a job finishing successfully.
    pub fn completed(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a job failing terminally.
    pub fn failed(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cancelled job going back on the queue.
    pub fn requeued(&self) {
        self.jobs_requeued.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a submission answered straight from the result store.
    pub fn store_hit(&self) {
        self.store_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one fleet task executed by this worker (`POST /tasks`).
    pub fn fleet_task_executed(&self) {
        self.fleet_tasks_executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one fleet task answered from the result store without
    /// re-executing (duplicate or retried dispatch).
    pub fn fleet_task_store_hit(&self) {
        self.fleet_task_store_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one store-GC pass into the totals.
    pub fn gc_pass(&self, evicted: u64, reclaimed_bytes: u64) {
        self.gc_evicted.fetch_add(evicted, Ordering::Relaxed);
        self.gc_reclaimed_bytes
            .fetch_add(reclaimed_bytes, Ordering::Relaxed);
    }

    /// Number of store-answered submissions so far.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Number of jobs completed so far.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::Relaxed)
    }

    /// Fold one finished campaign's engine counters into the totals.
    /// `cache` counters are daemon-lifetime (the cache is shared), so
    /// they are *stored*, not added.
    pub fn absorb_engine(&self, stats: &EngineStats) {
        self.cache_hits.store(stats.cache.hits, Ordering::Relaxed);
        self.cache_misses
            .store(stats.cache.misses, Ordering::Relaxed);
        self.tasks_executed
            .fetch_add(stats.recovery.executed, Ordering::Relaxed);
        self.tasks_salvaged
            .fetch_add(stats.recovery.salvaged, Ordering::Relaxed);
        self.journal_replayed
            .fetch_add(stats.journal_loaded, Ordering::Relaxed);
    }

    /// Fold one finished campaign's span profile into the process
    /// totals.
    pub fn absorb_profile(&self, profile: &Profile) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(profile);
    }

    /// Record one request's latency under its endpoint.
    pub fn record_latency(&self, endpoint: Endpoint, elapsed: Duration) {
        self.latency[endpoint.index()].record(elapsed);
    }

    /// Render the `/metrics` document. `queue_depth` and
    /// `store_records` are sampled by the caller (they live elsewhere).
    pub fn render(&self, queue_depth: usize, store_records: usize) -> String {
        let load = |a: &AtomicU64| Value::U64(a.load(Ordering::Relaxed));
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let jobs = Value::Obj(vec![
            ("submitted".to_string(), load(&self.jobs_submitted)),
            ("coalesced".to_string(), load(&self.jobs_coalesced)),
            ("completed".to_string(), load(&self.jobs_completed)),
            ("failed".to_string(), load(&self.jobs_failed)),
            ("requeued".to_string(), load(&self.jobs_requeued)),
            ("queue_depth".to_string(), Value::U64(queue_depth as u64)),
        ]);
        let cache = Value::Obj(vec![
            ("hits".to_string(), Value::U64(hits)),
            ("misses".to_string(), Value::U64(misses)),
            ("hit_rate".to_string(), Value::F64(hit_rate)),
        ]);
        let store = Value::Obj(vec![
            ("hits".to_string(), load(&self.store_hits)),
            ("records".to_string(), Value::U64(store_records as u64)),
            ("gc_evicted".to_string(), load(&self.gc_evicted)),
            (
                "gc_reclaimed_bytes".to_string(),
                load(&self.gc_reclaimed_bytes),
            ),
        ]);
        let fleet = Value::Obj(vec![
            (
                "tasks_executed".to_string(),
                load(&self.fleet_tasks_executed),
            ),
            (
                "task_store_hits".to_string(),
                load(&self.fleet_task_store_hits),
            ),
        ]);
        let recovery = Value::Obj(vec![
            ("tasks_executed".to_string(), load(&self.tasks_executed)),
            ("tasks_salvaged".to_string(), load(&self.tasks_salvaged)),
            ("journal_replayed".to_string(), load(&self.journal_replayed)),
        ]);
        let latency = Value::Obj(
            Endpoint::ALL
                .iter()
                .map(|e| (e.label().to_string(), self.latency[e.index()].to_value()))
                .collect(),
        );
        let spans = Value::Obj(
            self.spans
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .rows()
                .map(|(name, r)| {
                    (
                        name.to_string(),
                        Value::Obj(vec![
                            ("count".to_string(), Value::U64(r.count)),
                            ("ops".to_string(), Value::U64(r.ops)),
                            ("ticks".to_string(), Value::U64(r.ticks)),
                            ("wall_us".to_string(), Value::U64(r.wall_ns / 1_000)),
                        ]),
                    )
                })
                .collect(),
        );
        crate::json(&Value::Obj(vec![
            ("jobs".to_string(), jobs),
            ("cache".to_string(), cache),
            ("store".to_string(), store),
            ("fleet".to_string(), fleet),
            ("recovery".to_string(), recovery),
            ("spans".to_string(), spans),
            ("latency_us".to_string(), latency),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_in_the_rendered_document() {
        let m = Metrics::new();
        m.submitted();
        m.submitted();
        m.coalesced();
        m.completed();
        m.store_hit();
        m.record_latency(Endpoint::Submit, Duration::from_micros(500));
        m.record_latency(Endpoint::Submit, Duration::from_millis(50));
        m.record_latency(Endpoint::Metrics, Duration::from_secs(2));
        let doc = serde_json::from_str::<Value>(&m.render(3, 7)).expect("valid JSON");
        let jobs = doc.member("jobs").expect("jobs");
        assert_eq!(jobs.member("submitted").unwrap(), &Value::U64(2));
        assert_eq!(jobs.member("queue_depth").unwrap(), &Value::U64(3));
        assert_eq!(
            doc.member("store").unwrap().member("records").unwrap(),
            &Value::U64(7)
        );
        let submit = doc.member("latency_us").unwrap().member("submit").unwrap();
        assert_eq!(submit.member("count").unwrap(), &Value::U64(2));
        assert_eq!(submit.member("lt_1ms").unwrap(), &Value::U64(1));
        assert_eq!(submit.member("lt_100ms").unwrap(), &Value::U64(1));
        let metrics = doc.member("latency_us").unwrap().member("metrics").unwrap();
        assert_eq!(metrics.member("ge_1s").unwrap(), &Value::U64(1));
    }

    #[test]
    fn engine_stats_accumulate_across_campaigns() {
        use xps_core::explore::{CacheCounters, RecoveryStats};
        let m = Metrics::new();
        let mk = |hits, executed, loaded| EngineStats {
            cache: CacheCounters { hits, misses: 1 },
            recovery: RecoveryStats {
                executed,
                ..RecoveryStats::default()
            },
            journal_records: 0,
            journal_loaded: loaded,
        };
        m.absorb_engine(&mk(5, 10, 0));
        m.absorb_engine(&mk(9, 4, 6));
        let doc = serde_json::from_str::<Value>(&m.render(0, 0)).expect("valid");
        // Cache counters are lifetime snapshots (latest wins)…
        assert_eq!(
            doc.member("cache").unwrap().member("hits").unwrap(),
            &Value::U64(9)
        );
        // …recovery counters are per-campaign and accumulate.
        let rec = doc.member("recovery").unwrap();
        assert_eq!(rec.member("tasks_executed").unwrap(), &Value::U64(14));
        assert_eq!(rec.member("journal_replayed").unwrap(), &Value::U64(6));
    }
}
