//! The exploration-as-a-service daemon.
//!
//! ```text
//! xps-serve [--addr HOST:PORT] [--data-dir PATH] [--capacity N]
//!           [--workers N] [--jobs N]
//! ```
//!
//! Binds the HTTP endpoint, resumes any jobs a previous process left
//! unfinished in the data directory, and serves until SIGTERM/SIGINT,
//! at which point it drains gracefully: the in-flight job checkpoints
//! to its journal and is re-queued, so the next start completes it
//! byte-identically.

use std::io::Write;
use std::process::ExitCode;
use xps_serve::{install_signal_handlers, Server, ServerConfig};

const USAGE: &str = "usage: xps-serve [--addr HOST:PORT] [--data-dir PATH] [--capacity N] \
[--workers N] [--jobs N]";

fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::new("xps-serve-data");
    config.addr = "127.0.0.1:7780".to_string();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        if let Some(v) = args[*i].strip_prefix(&format!("{flag}=")) {
            return Ok(v.to_string());
        }
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value\n{USAGE}"))
    };
    while i < args.len() {
        let arg = args[i].clone();
        let name = arg.split('=').next().unwrap_or(&arg);
        match name {
            "--addr" => config.addr = value(args, &mut i, "--addr")?,
            "--data-dir" => config.data_dir = value(args, &mut i, "--data-dir")?.into(),
            "--capacity" => {
                let v = value(args, &mut i, "--capacity")?;
                config.queue_capacity = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--capacity expects a number >= 1, got `{v}`"))?;
            }
            "--workers" => {
                let v = value(args, &mut i, "--workers")?;
                config.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--workers expects a number >= 1, got `{v}`"))?;
            }
            "--jobs" => {
                let v = value(args, &mut i, "--jobs")?;
                config.pipeline_jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xps-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xps-serve: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers(server.shutdown_handle());
    // Machine-readable first line: tests and scripts scrape the bound
    // (possibly ephemeral) port from it.
    println!(
        "xps-serve listening on {addr} (data dir {})",
        config.data_dir.display()
    );
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => {
            println!("xps-serve drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xps-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_flags_in_both_spellings() {
        let c = parse_config(&strs(&[
            "--addr",
            "0.0.0.0:9000",
            "--data-dir=/tmp/d",
            "--capacity=3",
            "--workers",
            "2",
            "--jobs=4",
        ]))
        .expect("parses");
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!(c.data_dir, std::path::PathBuf::from("/tmp/d"));
        assert_eq!((c.queue_capacity, c.workers, c.pipeline_jobs), (3, 2, 4));
    }

    #[test]
    fn rejects_bad_flags_with_usage() {
        assert!(parse_config(&strs(&["--capacity", "0"]))
            .expect_err("zero capacity")
            .contains("--capacity"));
        assert!(parse_config(&strs(&["--frobnicate"]))
            .expect_err("unknown")
            .contains("unknown flag"));
        assert!(parse_config(&strs(&["--addr"]))
            .expect_err("missing value")
            .contains("expects a value"));
    }
}
