//! The fleet coordinator binary: scatter one exploration campaign
//! over a set of `xps-serve` workers and gather the canonical
//! campaign document.
//!
//! ```text
//! xps-fleet --workers HOST:PORT[,HOST:PORT...] [--workloads A,B,...]
//!           [--profile smoke|quick|full] [--jobs N] [--retries N]
//!           [--net-faults SPEC] [--out PATH]
//! ```
//!
//! The gathered document is byte-identical to a single-node run for
//! any worker count, topology, or failure schedule: dead, hung, or
//! flaky workers cost retries and (at worst) local fallback, never
//! different bytes. `--net-faults` (or the `XPS_NET_FAULTS`
//! environment variable) wraps the transport in a seeded fault plan —
//! CI runs the whole scatter-gather under injected drops, delays,
//! truncations, duplications, and garbage on every push.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use xps_serve::{
    run_campaign_with_fleet, FlakyTransport, Fleet, FleetConfig, NetFaultPlan, TcpTransport,
};

const USAGE: &str = "usage: xps-fleet --workers HOST:PORT[,..] [--workloads A,B,..] \
[--profile smoke|quick|full] [--jobs N] [--retries N] [--net-faults SPEC] [--out PATH]";

#[derive(Debug)]
struct Cli {
    workers: Vec<String>,
    workloads: Vec<String>,
    profile: String,
    jobs: usize,
    retries: u32,
    net_faults: Option<String>,
    out: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        workers: Vec::new(),
        workloads: vec!["gzip".to_string(), "mcf".to_string()],
        profile: "smoke".to_string(),
        jobs: 0,
        retries: 3,
        net_faults: None,
        out: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        if let Some(v) = args[*i].strip_prefix(&format!("{flag}=")) {
            return Ok(v.to_string());
        }
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value\n{USAGE}"))
    };
    let list = |v: String| -> Vec<String> {
        v.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect()
    };
    while i < args.len() {
        let arg = args[i].clone();
        let name = arg.split('=').next().unwrap_or(&arg);
        match name {
            "--workers" => cli.workers = list(value(args, &mut i, "--workers")?),
            "--workloads" => cli.workloads = list(value(args, &mut i, "--workloads")?),
            "--profile" => cli.profile = value(args, &mut i, "--profile")?,
            "--jobs" => {
                let v = value(args, &mut i, "--jobs")?;
                cli.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
            }
            "--retries" => {
                let v = value(args, &mut i, "--retries")?;
                cli.retries = v
                    .parse::<u32>()
                    .map_err(|_| format!("--retries expects a number, got `{v}`"))?;
            }
            "--net-faults" => cli.net_faults = Some(value(args, &mut i, "--net-faults")?),
            "--out" => cli.out = Some(value(args, &mut i, "--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn run(cli: &Cli) -> Result<(), String> {
    let plan = match &cli.net_faults {
        Some(spec) => Some(NetFaultPlan::parse(spec)?),
        None => NetFaultPlan::from_env()?,
    };
    let mut cfg = FleetConfig::new(cli.workers.clone());
    cfg.retries = cli.retries;
    let tcp = TcpTransport {
        connect_timeout: cfg.connect_timeout,
    };
    let fleet = Arc::new(match plan {
        Some(plan) if plan.is_active() => {
            eprintln!("xps-fleet: injecting network faults: {plan:?}");
            Fleet::new(cfg, Arc::new(FlakyTransport::new(plan, tcp)))
        }
        _ => Fleet::new(cfg, Arc::new(tcp)),
    });
    let report = run_campaign_with_fleet(&cli.workloads, &cli.profile, cli.jobs, &fleet)
        .map_err(|e| e.to_string())?;
    let stats = &report.stats;
    eprintln!(
        "xps-fleet: campaign {} gathered: {} remote, {} local-degraded, {} retries, {} quarantines",
        report.campaign_id, report.remote_tasks, stats.degraded, stats.retried, stats.quarantines
    );
    for w in &stats.workers {
        eprintln!(
            "xps-fleet:   {} completed {}{}",
            w.addr,
            w.completed,
            if w.quarantined { " (quarantined)" } else { "" }
        );
    }
    match &cli.out {
        Some(path) => {
            let path = std::path::Path::new(path);
            xps_core::explore::write_atomic(path, &report.document)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("xps-fleet: document written to {}", path.display());
        }
        None => {
            println!("{}", report.document);
            let _ = std::io::stdout().flush();
        }
    }
    // Sleep-free determinism contract: the document depends only on
    // the campaign, never on which workers answered.
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xps-fleet: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_flags_in_both_spellings() {
        let c = parse_cli(&strs(&[
            "--workers",
            "a:1,b:2",
            "--workloads=gzip,mcf,vpr",
            "--profile=quick",
            "--jobs",
            "4",
            "--retries=5",
            "--net-faults=drop=10,seed=3",
            "--out=/tmp/fleet.json",
        ]))
        .expect("parses");
        assert_eq!(c.workers, vec!["a:1", "b:2"]);
        assert_eq!(c.workloads, vec!["gzip", "mcf", "vpr"]);
        assert_eq!((c.profile.as_str(), c.jobs, c.retries), ("quick", 4, 5));
        assert_eq!(c.net_faults.as_deref(), Some("drop=10,seed=3"));
        assert_eq!(c.out.as_deref(), Some("/tmp/fleet.json"));
    }

    #[test]
    fn rejects_bad_flags_with_usage() {
        assert!(parse_cli(&strs(&["--frobnicate"]))
            .expect_err("unknown")
            .contains("unknown flag"));
        assert!(parse_cli(&strs(&["--retries", "many"]))
            .expect_err("bad retries")
            .contains("--retries"));
        assert!(parse_cli(&strs(&["--workers"]))
            .expect_err("missing value")
            .contains("expects a value"));
    }
}
