//! Request parsing, canonicalization, and job execution.
//!
//! A job request names a *question* (explore, evaluate, best
//! combination, slowdown row) over a *campaign* (a workload set and a
//! profile of exploration effort). The engine canonicalizes the
//! request — workloads sorted and deduplicated, defaults filled — so
//! equivalent requests share one fingerprint, runs the campaign at
//! most once (content-addressed in the store, memoized in the shared
//! evaluation cache, checkpointed in a per-campaign journal), and then
//! derives the job's answer from the stored campaign document.
//!
//! Determinism is the load-bearing property: the pipeline is
//! bit-identical for any worker count and across journal resumes, the
//! campaign document contains only simulation results (never run
//! counters), and job bodies are derived from the stored document —
//! so a repeated, restarted, or crash-resumed job always produces the
//! same bytes.

use crate::error::ServeError;
use crate::progress::ProgressHub;
use crate::store::{content_id, ResultStore};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, PoisonError};
use xps_core::communal::{combination_query, slowdown_row, CrossPerfMatrix};
use xps_core::explore::{
    EngineStats, EvalCache, ExploreError, Journal, ProgressEvent, ProgressSink, RunContext,
};
use xps_core::trace::{with_recorder, Profile as TraceProfile, TraceSink};
use xps_core::workload::spec;
use xps_core::{Pipeline, PipelineError};

/// How much exploration effort a campaign spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// A few iterations per walk: seconds, for smoke tests and demos.
    Smoke,
    /// [`Pipeline::quick`]: tens of seconds for a few workloads.
    Quick,
    /// [`Pipeline::default`]: the full measured reproduction.
    Full,
}

impl Profile {
    fn name(&self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    pub(crate) fn parse(name: &str) -> Result<Profile, ServeError> {
        match name {
            "smoke" => Ok(Profile::Smoke),
            "quick" => Ok(Profile::Quick),
            "full" | "default" => Ok(Profile::Full),
            other => Err(ServeError::BadRequest(format!(
                "unknown profile `{other}`; known: smoke, quick, full"
            ))),
        }
    }

    pub(crate) fn pipeline(&self, jobs: usize) -> Pipeline {
        let mut p = match self {
            Profile::Smoke => {
                let mut p = Pipeline::quick();
                p.explore.anneal.iterations = 8;
                p.explore.anneal.eval_ops_early = 3_000;
                p.explore.anneal.eval_ops_late = 6_000;
                p.explore.reanneal_iterations = 3;
                p.matrix_ops = 8_000;
                p
            }
            Profile::Quick => Pipeline::quick(),
            Profile::Full => Pipeline::default(),
        };
        p.explore.jobs = jobs;
        p
    }
}

/// The question a job asks of its campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum Question {
    /// The customized configuration of every workload in the set.
    Explore,
    /// One workload's performance on another's customized
    /// architecture.
    Evaluate {
        /// The workload being measured.
        workload: String,
        /// The workload whose architecture it runs on.
        on: String,
    },
    /// The best k-core combination under a named merit.
    Combination {
        /// Number of cores.
        cores: usize,
        /// Merit name (see `xps_communal::merit_by_name`).
        merit: String,
    },
    /// One workload's row of the percentage-slowdown matrix.
    Slowdown {
        /// The workload whose row is requested.
        workload: String,
    },
}

/// A parsed, canonicalized job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The question asked.
    pub question: Question,
    /// The campaign's workload set, sorted and deduplicated.
    pub workloads: Vec<String>,
    /// Exploration effort.
    pub profile: Profile,
}

fn known_workload(name: &str) -> Result<String, ServeError> {
    if spec::profile(name).is_some() {
        Ok(name.to_string())
    } else {
        Err(ServeError::BadRequest(format!(
            "unknown workload `{name}`; known: {}",
            spec::BENCHMARKS.join(", ")
        )))
    }
}

fn str_member(v: &Value, key: &str) -> Result<String, ServeError> {
    v.member(key)
        .and_then(|m| m.as_str().map(String::from))
        .map_err(ServeError::BadRequest)
}

impl JobRequest {
    /// Parse and canonicalize a request body.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] naming the first problem: bad JSON,
    /// missing or unknown `kind`, unknown workload or profile names,
    /// or a malformed field.
    pub fn parse(body: &str) -> Result<JobRequest, ServeError> {
        let v: Value = serde_json::from_str(body)
            .map_err(|e| ServeError::BadRequest(format!("request is not JSON: {e}")))?;
        let kind = str_member(&v, "kind")?;
        let profile = match v.member("profile") {
            Ok(p) => Profile::parse(p.as_str().map_err(ServeError::BadRequest)?)?,
            Err(_) => Profile::Quick,
        };
        let mut workloads: Vec<String> = match v.member("workloads") {
            Err(_) => Vec::new(),
            Ok(Value::Arr(items)) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map_err(ServeError::BadRequest)
                        .and_then(known_workload)
                })
                .collect::<Result<_, _>>()?,
            Ok(other) => {
                return Err(ServeError::BadRequest(format!(
                    "`workloads` must be an array of names, got {other:?}"
                )))
            }
        };
        let question = match kind.as_str() {
            "explore" => Question::Explore,
            "evaluate" => {
                let workload = known_workload(&str_member(&v, "workload")?)?;
                let on = known_workload(&str_member(&v, "on")?)?;
                // The two named workloads are implicitly part of the
                // campaign even if the caller omitted `workloads`.
                workloads.push(workload.clone());
                workloads.push(on.clone());
                Question::Evaluate { workload, on }
            }
            "combination" => {
                let cores = match v.member("cores").map_err(ServeError::BadRequest)? {
                    Value::U64(n) => *n as usize,
                    other => {
                        return Err(ServeError::BadRequest(format!(
                            "`cores` must be a positive integer, got {other:?}"
                        )))
                    }
                };
                let merit = match v.member("merit") {
                    Ok(m) => m.as_str().map_err(ServeError::BadRequest)?.to_string(),
                    Err(_) => "har".to_string(),
                };
                xps_core::communal::merit_by_name(&merit)
                    .map_err(|e| ServeError::BadRequest(e.to_string()))?;
                Question::Combination { cores, merit }
            }
            "slowdown" => Question::Slowdown {
                workload: known_workload(&str_member(&v, "workload")?)?,
            },
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown kind `{other}`; known: explore, evaluate, combination, slowdown"
                )))
            }
        };
        workloads.sort();
        workloads.dedup();
        if workloads.is_empty() {
            return Err(ServeError::BadRequest(
                "`workloads` must name at least one workload".into(),
            ));
        }
        if let Question::Combination { cores, .. } = &question {
            if *cores == 0 || *cores > workloads.len() {
                return Err(ServeError::BadRequest(format!(
                    "`cores` must be in 1..={}, got {cores}",
                    workloads.len()
                )));
            }
        }
        Ok(JobRequest {
            question,
            workloads,
            profile,
        })
    }

    /// The canonical JSON of this request: fixed key order, sorted
    /// workload set, defaults made explicit. Equal requests — however
    /// they were spelled — canonicalize to equal bytes, hence equal
    /// content ids.
    pub fn canonical(&self) -> String {
        let mut fields = vec![(
            "kind".to_string(),
            Value::Str(
                match self.question {
                    Question::Explore => "explore",
                    Question::Evaluate { .. } => "evaluate",
                    Question::Combination { .. } => "combination",
                    Question::Slowdown { .. } => "slowdown",
                }
                .to_string(),
            ),
        )];
        match &self.question {
            Question::Explore => {}
            Question::Evaluate { workload, on } => {
                fields.push(("workload".to_string(), Value::Str(workload.clone())));
                fields.push(("on".to_string(), Value::Str(on.clone())));
            }
            Question::Combination { cores, merit } => {
                fields.push(("cores".to_string(), Value::U64(*cores as u64)));
                fields.push(("merit".to_string(), Value::Str(merit.clone())));
            }
            Question::Slowdown { workload } => {
                fields.push(("workload".to_string(), Value::Str(workload.clone())));
            }
        }
        fields.push((
            "profile".to_string(),
            Value::Str(self.profile.name().to_string()),
        ));
        fields.push((
            "workloads".to_string(),
            Value::Arr(self.workloads.iter().cloned().map(Value::Str).collect()),
        ));
        crate::json(&Value::Obj(fields))
    }

    /// The canonical JSON of the underlying campaign (workload set +
    /// profile, no question) — different questions over the same
    /// campaign share this fingerprint, and therefore the expensive
    /// exploration.
    pub fn campaign_canonical(&self) -> String {
        crate::json(&Value::Obj(vec![
            (
                "profile".to_string(),
                Value::Str(self.profile.name().to_string()),
            ),
            (
                "workloads".to_string(),
                Value::Arr(self.workloads.iter().cloned().map(Value::Str).collect()),
            ),
        ]))
    }
}

/// The job execution engine: shared evaluation cache, result store,
/// per-campaign journals, and the progress hub feeds.
#[derive(Debug)]
pub struct Engine {
    data_dir: PathBuf,
    store: Arc<ResultStore>,
    cache: Arc<EvalCache>,
    hub: Arc<ProgressHub>,
    cancel: Arc<AtomicBool>,
    /// Worker threads per pipeline run (0 = available parallelism).
    pipeline_jobs: usize,
    /// One lock per in-flight campaign. Concurrent jobs asking
    /// different questions over the same campaign do not coalesce in
    /// the queue (different job ids), so without this two scheduler
    /// workers would open two `Journal` writers on the same
    /// `journal-<campaign_id>.jsonl` and race each other's atomic
    /// rewrites through the shared temp path — corrupting the journal
    /// and splitting checkpoints across two in-memory maps. The second
    /// worker instead waits here, then finds the first run's document
    /// in the store.
    campaigns: Mutex<HashMap<String, Arc<Mutex<()>>>>,
}

impl Engine {
    /// Build an engine rooted at `data_dir`.
    pub fn new(
        data_dir: PathBuf,
        store: Arc<ResultStore>,
        hub: Arc<ProgressHub>,
        cancel: Arc<AtomicBool>,
        pipeline_jobs: usize,
    ) -> Engine {
        Engine {
            data_dir,
            store,
            cache: Arc::new(EvalCache::new()),
            hub,
            cancel,
            pipeline_jobs,
            campaigns: Mutex::new(HashMap::new()),
        }
    }

    /// The shared evaluation cache (for metrics).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Execute one job: run (or fetch) its campaign, derive its
    /// answer, store it, and return the body. Emits progress into the
    /// job's hub feed throughout.
    ///
    /// # Errors
    ///
    /// [`ServeError`] for bad canonical requests (should not happen —
    /// they were validated at submission), pipeline failures, store
    /// I/O, and cancellation (see [`is_cancelled`]).
    pub fn run_job(
        &self,
        job_id: &str,
        canonical: &str,
    ) -> Result<(String, EngineStats, Option<TraceProfile>), ServeError> {
        let request = JobRequest::parse(canonical)?;
        let campaign_key = request.campaign_canonical();
        let campaign_id = content_id(&campaign_key);
        let lock = self.campaign_lock(&campaign_id);
        let outcome = {
            // Serialize the check-then-run on this campaign: only one
            // journal writer per campaign file can exist, and a waiter
            // is answered from the store once the holder has run. A
            // poisoned lock just means an earlier holder panicked
            // (panic-isolated in the scheduler); the journal and store
            // are crash-safe by construction, so proceeding is sound.
            let _serialized = lock.lock().unwrap_or_else(PoisonError::into_inner);
            match self.store.get(&campaign_id) {
                Err(e) => Err(e),
                Ok(Some(body)) => {
                    self.hub.publish(
                        job_id,
                        format!(
                            "{{\"event\":\"campaign\",\"id\":\"{campaign_id}\",\"source\":\"store\"}}"
                        ),
                    );
                    Ok((body, EngineStats::default(), None))
                }
                Ok(None) => self
                    .run_campaign(job_id, &request, &campaign_id)
                    .map(|(body, stats, profile)| (body, stats, Some(profile))),
            }
        };
        self.release_campaign_lock(&campaign_id, lock);
        let (campaign_body, stats, profile) = outcome?;
        let body = derive_answer(&request, &campaign_body)?;
        self.store.put(job_id, &body)?;
        Ok((body, stats, profile))
    }

    /// The serialization lock for one campaign, created on first use.
    fn campaign_lock(&self, campaign_id: &str) -> Arc<Mutex<()>> {
        self.campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(campaign_id.to_string())
            .or_default()
            .clone()
    }

    /// Drop this holder's handle and, when no other job waits on the
    /// campaign, remove its lock entry so the map tracks only
    /// in-flight campaigns.
    fn release_campaign_lock(&self, campaign_id: &str, lock: Arc<Mutex<()>>) {
        let mut map = self
            .campaigns
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        drop(lock);
        if map
            .get(campaign_id)
            .is_some_and(|l| Arc::strong_count(l) == 1)
        {
            map.remove(campaign_id);
        }
    }

    /// Run the campaign pipeline, journal-checkpointed and
    /// cancellable, and store its document.
    fn run_campaign(
        &self,
        job_id: &str,
        request: &JobRequest,
        campaign_id: &str,
    ) -> Result<(String, EngineStats, TraceProfile), ServeError> {
        let profiles: Vec<_> = request
            .workloads
            .iter()
            // xps-allow(no-unwrap-in-lib): JobRequest::parse rejects unknown workload names before an engine ever sees them
            .map(|n| spec::profile(n).expect("workloads validated at parse"))
            .collect();
        let journal_path = self.data_dir.join(format!("journal-{campaign_id}.jsonl"));
        // `open` resumes an interrupted campaign's checkpoints (and
        // starts empty when there are none).
        let journal = Journal::open(&journal_path)
            .map_err(|e| ServeError::Pipeline(PipelineError::from(e)))?;
        let replayed = journal.loaded();
        self.hub.publish(
            job_id,
            format!(
                "{{\"event\":\"campaign\",\"id\":\"{campaign_id}\",\"source\":\"run\",\"journal_replayed\":{replayed}}}"
            ),
        );
        let sink = self.progress_sink(job_id);
        // The daemon is the wall-clock edge: per-task span journals
        // stay deterministic, the job profile additionally carries
        // wall time for `/metrics` and the event feed.
        let trace = TraceSink::with_wall_clock();
        // `from_env` honors `XPS_FAULTS`, so fault-injected CI runs
        // exercise the daemon's retry/requeue paths like the batch
        // pipeline's.
        let mut ctx = RunContext::from_env()
            .map_err(|e| ServeError::Pipeline(PipelineError::from(e)))?
            .with_journal(journal)
            .with_cancel(self.cancel.clone())
            .with_observer(sink.clone())
            .with_trace(trace.clone());
        let pipeline = request.profile.pipeline(self.pipeline_jobs);
        let (root, result) = with_recorder(trace.recorder(), || {
            pipeline.run_recoverable_with(&profiles, &ctx, &self.cache, Some(&sink))
        });
        trace.attach("main", root);
        let result = result?;
        let stats = EngineStats::snapshot(&self.cache, &ctx);
        let body = campaign_document(&request.workloads, &result);
        self.store.put(campaign_id, &body)?;
        // The store now owns the result; the checkpoint journal has
        // served its purpose.
        if let Some(journal) = ctx.take_journal() {
            let _ = journal.discard();
        }
        let profile = trace.profile();
        for line in span_summary_lines(&profile) {
            self.hub.publish(job_id, line);
        }
        Ok((body, stats, profile))
    }

    /// The NDJSON progress sink for one job's feed: anneal steps and
    /// task completions, each stamped with the current cache hit rate.
    fn progress_sink(&self, job_id: &str) -> ProgressSink {
        let hub = self.hub.clone();
        let cache = self.cache.clone();
        let job = job_id.to_string();
        ProgressSink::new(move |event| {
            let hit_rate = cache.counters().hit_rate();
            let line = match event {
                ProgressEvent::AnnealStep {
                    workload,
                    start,
                    iteration,
                    iterations,
                    temperature,
                    best,
                } => crate::json(&Value::Obj(vec![
                    ("event".to_string(), Value::Str("anneal".to_string())),
                    ("workload".to_string(), Value::Str(workload.clone())),
                    ("start".to_string(), Value::U64(u64::from(*start))),
                    ("iteration".to_string(), Value::U64(u64::from(*iteration))),
                    ("iterations".to_string(), Value::U64(u64::from(*iterations))),
                    ("temperature".to_string(), Value::F64(*temperature)),
                    ("best_ipt".to_string(), Value::F64(*best)),
                    ("cache_hit_rate".to_string(), Value::F64(hit_rate)),
                ])),
                ProgressEvent::TaskDone { key, salvaged } => crate::json(&Value::Obj(vec![
                    ("event".to_string(), Value::Str("task".to_string())),
                    ("key".to_string(), Value::Str(key.clone())),
                    ("salvaged".to_string(), Value::Bool(*salvaged)),
                    ("cache_hit_rate".to_string(), Value::F64(hit_rate)),
                ])),
            };
            hub.publish(&job, line);
        })
    }
}

/// Assemble the canonical campaign document from a pipeline result.
/// The single serialization point for campaign bodies — the daemon's
/// `run_campaign` and the fleet coordinator both emit through here, so
/// a fleet-gathered campaign is byte-identical to a single-node run by
/// construction. The document holds only deterministic simulation
/// results — never run counters, which differ across resumes and
/// topologies.
pub fn campaign_document(workloads: &[String], result: &xps_core::PipelineResult) -> String {
    crate::json(&Value::Obj(vec![
        (
            "workloads".to_string(),
            Value::Arr(workloads.iter().cloned().map(Value::Str).collect()),
        ),
        (
            "cores".to_string(),
            Value::Arr(result.cores.iter().map(|c| c.to_value()).collect()),
        ),
        ("matrix".to_string(), result.matrix.to_value()),
    ]))
}

/// One NDJSON feed line per profiled phase, name-ordered: the job's
/// span summary, streamed to watchers right before the terminal line.
fn span_summary_lines(profile: &TraceProfile) -> Vec<String> {
    profile
        .rows()
        .map(|(name, r)| {
            crate::json(&Value::Obj(vec![
                ("event".to_string(), Value::Str("span".to_string())),
                ("name".to_string(), Value::Str(name.to_string())),
                ("count".to_string(), Value::U64(r.count)),
                ("ops".to_string(), Value::U64(r.ops)),
                ("ticks".to_string(), Value::U64(r.ticks)),
                ("wall_us".to_string(), Value::U64(r.wall_ns / 1_000)),
            ]))
        })
        .collect()
}

/// Whether an error is the graceful-shutdown cancellation (the job
/// should be re-queued, not failed).
pub fn is_cancelled(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Pipeline(PipelineError::Explore(ExploreError::Cancelled))
    )
}

/// Derive a job's answer document from its campaign document.
fn derive_answer(request: &JobRequest, campaign_body: &str) -> Result<String, ServeError> {
    let campaign: Value =
        serde_json::from_str(campaign_body).map_err(|e| ServeError::StoreCorrupt {
            path: PathBuf::from("<campaign document>"),
            detail: format!("does not parse: {e}"),
        })?;
    let bad = |detail: String| ServeError::StoreCorrupt {
        path: PathBuf::from("<campaign document>"),
        detail,
    };
    let matrix = || -> Result<CrossPerfMatrix, ServeError> {
        CrossPerfMatrix::from_value(campaign.member("matrix").map_err(&bad)?).map_err(&bad)
    };
    let mut fields = vec![(
        "kind".to_string(),
        Value::Str(
            match request.question {
                Question::Explore => "explore",
                Question::Evaluate { .. } => "evaluate",
                Question::Combination { .. } => "combination",
                Question::Slowdown { .. } => "slowdown",
            }
            .to_string(),
        ),
    )];
    fields.push((
        "workloads".to_string(),
        Value::Arr(request.workloads.iter().cloned().map(Value::Str).collect()),
    ));
    match &request.question {
        Question::Explore => {
            fields.push((
                "cores".to_string(),
                campaign.member("cores").map_err(&bad)?.clone(),
            ));
        }
        Question::Evaluate { workload, on } => {
            let m = matrix()?;
            let w = m
                .index_of(workload)
                .ok_or_else(|| bad(format!("workload `{workload}` missing from matrix")))?;
            let c = m
                .index_of(on)
                .ok_or_else(|| bad(format!("workload `{on}` missing from matrix")))?;
            fields.push(("workload".to_string(), Value::Str(workload.clone())));
            fields.push(("on".to_string(), Value::Str(on.clone())));
            fields.push(("ipt".to_string(), Value::F64(m.ipt(w, c))));
            fields.push(("own_ipt".to_string(), Value::F64(m.ipt(w, w))));
            fields.push((
                "slowdown_pct".to_string(),
                Value::F64(100.0 * m.slowdown(w, c)),
            ));
        }
        Question::Combination { cores, merit } => {
            let m = matrix()?;
            let combo = combination_query(&m, *cores, merit)
                .map_err(|e| ServeError::BadRequest(e.to_string()))?;
            fields.push(("merit".to_string(), Value::Str(merit.clone())));
            fields.push(("combination".to_string(), combo.to_value()));
        }
        Question::Slowdown { workload } => {
            let m = matrix()?;
            let row =
                slowdown_row(&m, workload).map_err(|e| ServeError::BadRequest(e.to_string()))?;
            fields.push(("row".to_string(), row.to_value()));
        }
    }
    Ok(crate::json(&Value::Obj(fields)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_sorts_dedups_and_defaults() {
        let a = JobRequest::parse(r#"{"kind":"explore","workloads":["mcf","gzip","mcf"]}"#)
            .expect("parses");
        let b =
            JobRequest::parse(r#"{"kind":"explore","profile":"quick","workloads":["gzip","mcf"]}"#)
                .expect("parses");
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(
            a.canonical(),
            r#"{"kind":"explore","profile":"quick","workloads":["gzip","mcf"]}"#
        );
        assert_eq!(
            a.campaign_canonical(),
            r#"{"profile":"quick","workloads":["gzip","mcf"]}"#
        );
    }

    #[test]
    fn evaluate_pulls_named_workloads_into_the_campaign() {
        let r = JobRequest::parse(r#"{"kind":"evaluate","workload":"mcf","on":"gzip"}"#)
            .expect("parses");
        assert_eq!(r.workloads, vec!["gzip".to_string(), "mcf".to_string()]);
        // The same campaign as an explore over those two workloads.
        let e =
            JobRequest::parse(r#"{"kind":"explore","workloads":["mcf","gzip"]}"#).expect("parses");
        assert_eq!(r.campaign_canonical(), e.campaign_canonical());
        assert_ne!(r.canonical(), e.canonical());
    }

    #[test]
    fn bad_requests_are_named() {
        let cases = [
            ("not json at all", "not JSON"),
            (r#"{"workloads":["gzip"]}"#, "kind"),
            (r#"{"kind":"dance","workloads":["gzip"]}"#, "unknown kind"),
            (
                r#"{"kind":"explore","workloads":["quake3"]}"#,
                "unknown workload",
            ),
            (r#"{"kind":"explore","workloads":[]}"#, "at least one"),
            (
                r#"{"kind":"explore","workloads":["gzip"],"profile":"epic"}"#,
                "unknown profile",
            ),
            (
                r#"{"kind":"combination","workloads":["gzip","mcf"],"cores":3}"#,
                "1..=2",
            ),
            (
                r#"{"kind":"combination","workloads":["gzip","mcf"],"cores":1,"merit":"x"}"#,
                "unknown merit",
            ),
        ];
        for (body, needle) in cases {
            let e = JobRequest::parse(body).expect_err(body);
            assert_eq!(e.status(), 400, "{body}");
            assert!(e.to_string().contains(needle), "{body}: {e}");
        }
    }

    #[test]
    fn derive_answers_from_a_synthetic_campaign() {
        let campaign = crate::json(&Value::Obj(vec![
            (
                "workloads".to_string(),
                Value::Arr(vec![Value::Str("gzip".into()), Value::Str("mcf".into())]),
            ),
            (
                "cores".to_string(),
                Value::Arr(vec![Value::Str("placeholder".into())]),
            ),
            (
                "matrix".to_string(),
                CrossPerfMatrix::new(
                    vec!["gzip".into(), "mcf".into()],
                    vec![vec![2.0, 1.0], vec![0.5, 1.5]],
                )
                .expect("valid")
                .to_value(),
            ),
        ]));
        let eval = JobRequest::parse(r#"{"kind":"evaluate","workload":"gzip","on":"mcf"}"#)
            .expect("parses");
        let body = derive_answer(&eval, &campaign).expect("derives");
        let v: Value = serde_json::from_str(&body).expect("valid");
        assert_eq!(v.member("ipt").unwrap(), &Value::F64(1.0));
        assert_eq!(v.member("slowdown_pct").unwrap(), &Value::F64(50.0));
        let combo = JobRequest::parse(
            r#"{"kind":"combination","workloads":["gzip","mcf"],"cores":1,"merit":"avg"}"#,
        )
        .expect("parses");
        let body = derive_answer(&combo, &campaign).expect("derives");
        let v: Value = serde_json::from_str(&body).expect("valid");
        assert!(v.member("combination").is_ok());
        let slow =
            JobRequest::parse(r#"{"kind":"slowdown","workloads":["gzip","mcf"],"workload":"mcf"}"#)
                .expect("parses");
        let body = derive_answer(&slow, &campaign).expect("derives");
        assert!(body.contains("\"row\""));
        // Derivation is deterministic: same campaign, same bytes.
        assert_eq!(body, derive_answer(&slow, &campaign).expect("derives"));
    }
}
