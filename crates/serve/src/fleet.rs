//! The fleet coordinator: scatter-gather exploration over remote
//! `xps-serve` workers, hardened against worker failure.
//!
//! A [`Fleet`] implements the exploration layer's
//! [`TaskDispatcher`] seam: when the pipeline fans out a batch of
//! tasks, each task's canonical [`TaskSpec`] is POSTed to a worker's
//! `/tasks` endpoint, and the returned body is spliced into the fan in
//! item order — so the gathered campaign document is byte-identical to
//! a single-node run for any worker count, topology, or failure
//! schedule. The coordinator owns *placement and endurance*; the
//! *results* are pure functions of the specs.
//!
//! Failure handling is the point:
//!
//! * every round-trip has connect/read/write deadlines (a hung worker
//!   surfaces as a timeout, never a wedged pool slot);
//! * failed dispatches retry on the next healthy worker, bounded by
//!   [`FleetConfig::retries`], with deterministic exponential backoff
//!   plus seeded jitter — the backoff schedule is a pure function of
//!   the task key, never the clock;
//! * responses travel in a checksummed envelope, so a truncated or
//!   garbled body is detected and retried instead of silently merged
//!   (a truncated bare number would still parse as JSON);
//! * workers accumulating [`FleetConfig::quarantine_after`]
//!   consecutive failures are quarantined out of the rotation, and a
//!   background heartbeat probes `/healthz` to detect hangs early and
//!   restore recovered workers;
//! * when every retry is exhausted — or every worker is quarantined —
//!   the dispatcher declines and the task runs coordinator-local: the
//!   campaign always completes, degraded but correct.

use crate::engine::{campaign_document, JobRequest, Profile, Question};
use crate::error::ServeError;
use crate::store::{body_checksum, content_id};
use crate::transport::Transport;
use serde::Value;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use xps_core::explore::{fnv64, EvalCache, RunContext, TaskDispatcher, TaskSpec};
use xps_core::workload::spec;
use xps_core::PipelineError;

/// Tuning for a fleet coordinator.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker addresses (`host:port`). Empty = always run locally.
    pub workers: Vec<String>,
    /// Bound on establishing a connection to a worker.
    pub connect_timeout: Duration,
    /// Bound on each task round-trip's socket reads and writes.
    pub request_timeout: Duration,
    /// Bound on heartbeat probe round-trips (short: a probe that needs
    /// longer than this is itself evidence of a hang).
    pub heartbeat_timeout: Duration,
    /// Retries per task after its first attempt; attempts are bounded
    /// by `retries + 1`, then the task degrades to local execution.
    pub retries: u32,
    /// Base backoff before a retry, milliseconds; attempt `k` waits
    /// `base * 2^k` plus seeded jitter in `[0, base)`.
    pub backoff_base_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Consecutive failures that quarantine a worker out of the
    /// rotation (heartbeat probes can restore it).
    pub quarantine_after: u32,
    /// Pause between heartbeat sweeps; `Duration::ZERO` disables the
    /// heartbeat thread.
    pub heartbeat_interval: Duration,
}

impl FleetConfig {
    /// Defaults over `workers`.
    pub fn new(workers: Vec<String>) -> FleetConfig {
        FleetConfig {
            workers,
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(120),
            heartbeat_timeout: Duration::from_secs(2),
            retries: 3,
            backoff_base_ms: 25,
            backoff_seed: 0x5eed,
            quarantine_after: 3,
            heartbeat_interval: Duration::from_millis(500),
        }
    }
}

/// Live health and accounting for one worker.
#[derive(Debug)]
struct WorkerState {
    addr: String,
    /// Consecutive failed round-trips; reset by any success.
    failures: AtomicU32,
    /// Quarantined workers leave the dispatch rotation until a
    /// heartbeat probe succeeds.
    quarantined: AtomicBool,
    /// Tasks this worker answered successfully.
    completed: AtomicU64,
}

/// Point-in-time accounting for one worker, for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// The worker's address.
    pub addr: String,
    /// Tasks it answered successfully.
    pub completed: u64,
    /// Whether it is currently quarantined.
    pub quarantined: bool,
}

/// Point-in-time fleet accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStats {
    /// Tasks answered remotely.
    pub dispatched: u64,
    /// Retry attempts made (not counting first attempts).
    pub retried: u64,
    /// Tasks that fell back to coordinator-local execution.
    pub degraded: u64,
    /// Quarantine events (a worker can be quarantined repeatedly).
    pub quarantines: u64,
    /// Per-worker accounting.
    pub workers: Vec<WorkerSnapshot>,
}

#[derive(Debug)]
struct FleetInner {
    cfg: FleetConfig,
    transport: Arc<dyn Transport>,
    workers: Vec<WorkerState>,
    /// Round-robin cursor over the healthy subset.
    cursor: AtomicU64,
    dispatched: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
    quarantines: AtomicU64,
    /// Monotone heartbeat probe counter (names probe fault keys).
    hb_probes: AtomicU64,
    stop: AtomicBool,
}

impl FleetInner {
    /// The next worker in round-robin order among the non-quarantined,
    /// or `None` when every worker is quarantined.
    fn pick_healthy(&self) -> Option<usize> {
        let healthy: Vec<usize> = (0..self.workers.len())
            .filter(|&i| !self.workers[i].quarantined.load(Ordering::Relaxed))
            .collect();
        if healthy.is_empty() {
            return None;
        }
        let c = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        Some(healthy[c % healthy.len()])
    }

    /// Deterministic backoff before retry `attempt` (0-based) of
    /// `key`: exponential in the attempt, jittered by a seeded hash of
    /// the key — a pure function of `(config, key, attempt)`, so a
    /// replayed failure schedule backs off identically. Only the
    /// *sleeping* takes wall time; no decision reads the clock.
    fn backoff_ms(&self, key: &str, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base_ms.max(1);
        let jitter_key = format!("{key}@{attempt}");
        (base << attempt.min(6)) + fnv64(self.cfg.backoff_seed, jitter_key.as_bytes()) % base
    }

    fn note_failure(&self, idx: usize) {
        let w = &self.workers[idx];
        let failures = w.failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= self.cfg.quarantine_after && !w.quarantined.swap(true, Ordering::Relaxed) {
            self.quarantines.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "fleet: quarantining worker {} after {failures} consecutive failures",
                w.addr
            );
        }
    }

    fn note_success(&self, idx: usize) {
        let w = &self.workers[idx];
        w.failures.store(0, Ordering::Relaxed);
        if w.quarantined.swap(false, Ordering::Relaxed) {
            eprintln!("fleet: worker {} restored to rotation", w.addr);
        }
    }

    /// One heartbeat sweep: probe every worker's `/healthz` with a
    /// short deadline; successes restore quarantined workers, failures
    /// count toward quarantine exactly like task failures.
    fn heartbeat_sweep(&self) {
        for (i, w) in self.workers.iter().enumerate() {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let n = self.hb_probes.fetch_add(1, Ordering::Relaxed);
            let key = format!("hb/{}/{n}", w.addr);
            let probe = self.transport.roundtrip(
                &w.addr,
                "GET",
                "/healthz",
                None,
                self.cfg.heartbeat_timeout,
                &key,
            );
            match probe {
                Ok(resp) if resp.status == 200 => self.note_success(i),
                _ => self.note_failure(i),
            }
        }
    }
}

/// The coordinator-side dispatcher over a set of workers. Construct
/// with [`Fleet::new`], hand it to
/// [`RunContext::with_dispatcher`], or drive a whole campaign with
/// [`run_campaign_with_fleet`].
#[derive(Debug)]
pub struct Fleet {
    inner: Arc<FleetInner>,
    heartbeat: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Build a fleet over `cfg.workers` speaking through `transport`,
    /// starting the heartbeat thread unless disabled.
    pub fn new(cfg: FleetConfig, transport: Arc<dyn Transport>) -> Fleet {
        let heartbeat_enabled = cfg.heartbeat_interval > Duration::ZERO && !cfg.workers.is_empty();
        let workers = cfg
            .workers
            .iter()
            .map(|addr| WorkerState {
                addr: addr.clone(),
                failures: AtomicU32::new(0),
                quarantined: AtomicBool::new(false),
                completed: AtomicU64::new(0),
            })
            .collect();
        let inner = Arc::new(FleetInner {
            cfg,
            transport,
            workers,
            cursor: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            hb_probes: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let heartbeat = heartbeat_enabled.then(|| {
            let hb = inner.clone();
            std::thread::Builder::new()
                .name("fleet-heartbeat".into())
                .spawn(move || {
                    while !hb.stop.load(Ordering::Relaxed) {
                        hb.heartbeat_sweep();
                        // Sleep in slices so shutdown stays prompt.
                        let mut left = hb.cfg.heartbeat_interval;
                        while !hb.stop.load(Ordering::Relaxed) && left > Duration::ZERO {
                            let step = left.min(Duration::from_millis(50));
                            std::thread::sleep(step);
                            left -= step;
                        }
                    }
                })
                // xps-allow(no-unwrap-in-lib): thread spawn fails only on resource exhaustion at startup
                .expect("spawn fleet heartbeat thread")
        });
        Fleet { inner, heartbeat }
    }

    /// A fleet over the production TCP transport.
    pub fn tcp(cfg: FleetConfig) -> Fleet {
        let transport = Arc::new(crate::transport::TcpTransport {
            connect_timeout: cfg.connect_timeout,
        });
        Fleet::new(cfg, transport)
    }

    /// Point-in-time accounting.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            dispatched: self.inner.dispatched.load(Ordering::Relaxed),
            retried: self.inner.retried.load(Ordering::Relaxed),
            degraded: self.inner.degraded.load(Ordering::Relaxed),
            quarantines: self.inner.quarantines.load(Ordering::Relaxed),
            workers: self
                .inner
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    addr: w.addr.clone(),
                    completed: w.completed.load(Ordering::Relaxed),
                    quarantined: w.quarantined.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(hb) = self.heartbeat.take() {
            let _ = hb.join();
        }
    }
}

impl TaskDispatcher for Fleet {
    fn dispatch(&self, key: &str, spec: &TaskSpec) -> Option<String> {
        let inner = &self.inner;
        if inner.workers.is_empty() {
            return None;
        }
        let payload = spec.canonical();
        for attempt in 0..=inner.cfg.retries {
            let Some(idx) = inner.pick_healthy() else {
                // Every worker is quarantined: degrade without burning
                // the remaining retry budget on a known-dead fleet.
                break;
            };
            if attempt > 0 {
                inner.retried.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(inner.backoff_ms(key, attempt - 1)));
            }
            // Per-attempt fault key: a retry is a *different*
            // round-trip to the injection plan, so a transient fault
            // clears on retry while a permanent one keeps firing.
            let fault_key = format!("{key}@{attempt}");
            let worker = &inner.workers[idx];
            let outcome = inner.transport.roundtrip(
                &worker.addr,
                "POST",
                "/tasks",
                Some(&payload),
                inner.cfg.request_timeout,
                &fault_key,
            );
            match outcome {
                Ok(resp) if resp.status == 200 => match open_envelope(&resp.body) {
                    Ok(body) => {
                        inner.note_success(idx);
                        worker.completed.fetch_add(1, Ordering::Relaxed);
                        inner.dispatched.fetch_add(1, Ordering::Relaxed);
                        return Some(body);
                    }
                    // Corrupted in flight (truncated/garbled): the
                    // worker may be fine, but the bytes are not.
                    Err(_) => inner.note_failure(idx),
                },
                // The worker understood the request and rejected the
                // spec; retrying cannot change its mind — run locally,
                // where the same rejection becomes a typed task error.
                Ok(resp) if resp.status == 400 => break,
                _ => inner.note_failure(idx),
            }
        }
        inner.degraded.fetch_add(1, Ordering::Relaxed);
        None
    }
}

/// Wrap a task result body in the checksummed wire envelope:
/// `{"body":"<raw body>","sum":"<fnv64>"}`. The body rides as a JSON
/// *string*, so any truncation or garbling of the response breaks
/// either the envelope's framing or its checksum — a corrupted bare
/// number, by contrast, could still parse as valid JSON and merge
/// silently.
pub(crate) fn task_envelope(body: &str) -> String {
    crate::json(&Value::Obj(vec![
        ("body".to_string(), Value::Str(body.to_string())),
        ("sum".to_string(), Value::Str(body_checksum(body))),
    ]))
}

/// Verify and unwrap a wire envelope.
pub(crate) fn open_envelope(envelope: &str) -> Result<String, String> {
    let v: Value =
        serde_json::from_str(envelope).map_err(|e| format!("task envelope does not parse: {e}"))?;
    let body = v.member("body")?.as_str()?.to_string();
    let sum = v.member("sum")?.as_str()?.to_string();
    if body_checksum(&body) != sum {
        return Err(format!(
            "task envelope checksum mismatch: sum {sum} over {} body bytes",
            body.len()
        ));
    }
    Ok(body)
}

/// A gathered fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The campaign document — byte-identical to a single-node run.
    pub document: String,
    /// The campaign's content id (same addressing as the daemon's
    /// store, so workers that ran the campaign share the entry).
    pub campaign_id: String,
    /// Tasks answered by remote workers during this run.
    pub remote_tasks: u64,
    /// Fleet accounting at the end of the run.
    pub stats: FleetStats,
}

/// Run one exploration campaign scattered over `fleet`, gathering the
/// canonical campaign document. Placement, retries, quarantine, and
/// degradation never change the output bytes: every task result is a
/// pure function of its spec, results merge in item order, and the
/// document is emitted through the same
/// [`campaign_document`] serialization point as the daemon.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for unknown workload or profile names
/// and [`ServeError::Pipeline`] when the pipeline itself fails
/// (dispatch failures degrade to local execution instead of failing).
pub fn run_campaign_with_fleet(
    workloads: &[String],
    profile: &str,
    jobs: usize,
    fleet: &Arc<Fleet>,
) -> Result<FleetReport, ServeError> {
    let profile = Profile::parse(profile)?;
    let mut names: Vec<String> = workloads.to_vec();
    names.sort();
    names.dedup();
    if names.is_empty() {
        return Err(ServeError::BadRequest(
            "fleet campaign needs at least one workload".into(),
        ));
    }
    let profiles: Vec<_> = names
        .iter()
        .map(|n| {
            spec::profile(n).ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "unknown workload `{n}`; known: {}",
                    spec::BENCHMARKS.join(", ")
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let cache = EvalCache::new();
    // `from_env` honors `XPS_FAULTS`, so fleet runs compose with the
    // task-level fault harness exactly like daemon and batch runs.
    let ctx = RunContext::from_env()
        .map_err(|e| ServeError::Pipeline(PipelineError::from(e)))?
        .with_dispatcher(fleet.clone());
    let pipeline = profile.pipeline(jobs);
    let result = pipeline.run_recoverable_with(&profiles, &ctx, &cache, None)?;
    let document = campaign_document(&names, &result);
    let request = JobRequest {
        question: Question::Explore,
        workloads: names,
        profile,
    };
    Ok(FleetReport {
        document,
        campaign_id: content_id(&request.campaign_canonical()),
        remote_tasks: ctx.remote_dispatched(),
        stats: fleet.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Response;
    use crate::netfault::NetFaultPlan;
    use crate::transport::FlakyTransport;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn envelope_round_trips_and_detects_tampering() {
        let body = r#"{"ipt":0.123456789}"#;
        let env = task_envelope(body);
        assert_eq!(open_envelope(&env).expect("opens"), body);
        // Truncation of a bare-number body would still be valid JSON;
        // the envelope catches it.
        let mut cut = env.clone();
        cut.truncate(cut.len() / 2);
        assert!(open_envelope(&cut).is_err());
        let forged = env.replace("0.123", "0.124");
        assert!(open_envelope(&forged)
            .expect_err("checksum")
            .contains("checksum mismatch"));
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_exponential() {
        let fleet = Fleet::new(
            FleetConfig {
                heartbeat_interval: Duration::ZERO,
                ..FleetConfig::new(vec!["w:1".into()])
            },
            Arc::new(crate::transport::TcpTransport::default()),
        );
        let base = fleet.inner.cfg.backoff_base_ms;
        for attempt in 0..10 {
            let ms = fleet.inner.backoff_ms("matrix#0/7", attempt);
            assert_eq!(ms, fleet.inner.backoff_ms("matrix#0/7", attempt));
            let exp = base << attempt.min(6);
            assert!((exp..exp + base).contains(&ms), "attempt {attempt}: {ms}");
        }
        let jitters: BTreeSet<u64> = (0..32)
            .map(|i| fleet.inner.backoff_ms(&format!("matrix#0/{i}"), 0))
            .collect();
        assert!(jitters.len() > 1, "jitter must vary by key");
    }

    /// An in-process "worker": executes task specs against a local
    /// cache, exactly as `xps-serve`'s `/tasks` endpoint does.
    /// Addresses listed in `dead` refuse every connection.
    #[derive(Debug)]
    struct LocalWorkers {
        cache: EvalCache,
        dead: Mutex<BTreeSet<String>>,
    }

    impl LocalWorkers {
        fn new() -> LocalWorkers {
            LocalWorkers {
                cache: EvalCache::new(),
                dead: Mutex::new(BTreeSet::new()),
            }
        }
    }

    impl Transport for LocalWorkers {
        fn roundtrip(
            &self,
            addr: &str,
            method: &str,
            path: &str,
            body: Option<&str>,
            _timeout: Duration,
            _fault_key: &str,
        ) -> Result<Response, ServeError> {
            if self.dead.lock().expect("lock").contains(addr) {
                return Err(ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("{addr} is down"),
                )));
            }
            match (method, path) {
                ("GET", "/healthz") => Ok(Response {
                    status: 200,
                    body: r#"{"ok":true}"#.to_string(),
                }),
                ("POST", "/tasks") => {
                    let spec: TaskSpec = serde_json::from_str(body.unwrap_or(""))
                        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
                    match spec.execute(&self.cache) {
                        Ok(result) => Ok(Response {
                            status: 200,
                            body: task_envelope(&result),
                        }),
                        Err(detail) => Ok(Response {
                            status: 400,
                            body: detail,
                        }),
                    }
                }
                other => panic!("unexpected fleet request {other:?}"),
            }
        }
    }

    fn local_document(workloads: &[&str], jobs: usize) -> String {
        let names: Vec<String> = workloads.iter().map(|w| w.to_string()).collect();
        let no_workers = Arc::new(Fleet::new(
            FleetConfig {
                heartbeat_interval: Duration::ZERO,
                ..FleetConfig::new(Vec::new())
            },
            Arc::new(crate::transport::TcpTransport::default()),
        ));
        run_campaign_with_fleet(&names, "smoke", jobs, &no_workers)
            .expect("local run")
            .document
    }

    fn quick_fleet(transport: Arc<dyn Transport>, workers: &[&str], retries: u32) -> Arc<Fleet> {
        let mut cfg = FleetConfig::new(workers.iter().map(|w| w.to_string()).collect());
        cfg.retries = retries;
        cfg.backoff_base_ms = 1;
        cfg.heartbeat_interval = Duration::ZERO;
        Arc::new(Fleet::new(cfg, transport))
    }

    #[test]
    fn gathered_document_is_byte_identical_with_a_dead_worker() {
        let expected = local_document(&["gzip", "mcf"], 2);
        let workers = LocalWorkers::new();
        workers
            .dead
            .lock()
            .expect("lock")
            .insert("worker-b:2".to_string());
        let fleet = quick_fleet(
            Arc::new(workers),
            &["worker-a:1", "worker-b:2", "worker-c:3"],
            2,
        );
        let names = vec!["gzip".to_string(), "mcf".to_string()];
        let report = run_campaign_with_fleet(&names, "smoke", 2, &fleet).expect("fleet run");
        assert_eq!(report.document, expected, "byte identity despite failures");
        assert!(report.remote_tasks > 0, "work actually went remote");
        let stats = &report.stats;
        assert!(stats.retried > 0, "the dead worker forced retries");
        assert!(
            stats.quarantines >= 1,
            "the dead worker was quarantined: {stats:?}"
        );
        assert_eq!(
            stats
                .workers
                .iter()
                .find(|w| w.addr == "worker-b:2")
                .expect("snapshot")
                .completed,
            0
        );
    }

    #[test]
    fn all_workers_dead_degrades_to_local_and_stays_identical() {
        let expected = local_document(&["gzip"], 2);
        let workers = LocalWorkers::new();
        {
            let mut dead = workers.dead.lock().expect("lock");
            dead.insert("w1:1".to_string());
            dead.insert("w2:2".to_string());
        }
        let fleet = quick_fleet(Arc::new(workers), &["w1:1", "w2:2"], 1);
        let names = vec!["gzip".to_string()];
        let report = run_campaign_with_fleet(&names, "smoke", 2, &fleet).expect("degraded run");
        assert_eq!(report.document, expected);
        assert_eq!(report.remote_tasks, 0);
        assert!(report.stats.degraded > 0);
        assert_eq!(report.stats.dispatched, 0);
    }

    #[test]
    fn flaky_transport_never_changes_the_gathered_bytes() {
        let expected = local_document(&["gzip", "mcf"], 2);
        let plan = NetFaultPlan::parse(
            "drop=10,delay=5,truncate=5,duplicate=5,garbage=5,seed=3,delay_ms=1",
        )
        .expect("parses");
        let transport = FlakyTransport::new(plan, LocalWorkers::new());
        let fleet = quick_fleet(Arc::new(transport), &["w1:1", "w2:2"], 3);
        let names = vec!["gzip".to_string(), "mcf".to_string()];
        let report = run_campaign_with_fleet(&names, "smoke", 2, &fleet).expect("flaky run");
        assert_eq!(
            report.document, expected,
            "faults may relocate, never corrupt"
        );
        assert!(report.remote_tasks > 0);
    }

    #[test]
    fn rejected_specs_break_out_without_burning_retries() {
        // A transport that always answers 400: dispatch must decline
        // after ONE attempt (no retries — the rejection is sticky).
        #[derive(Debug, Default)]
        struct Rejecting {
            calls: AtomicU64,
        }
        impl Transport for Rejecting {
            fn roundtrip(
                &self,
                _addr: &str,
                _method: &str,
                _path: &str,
                _body: Option<&str>,
                _timeout: Duration,
                _fault_key: &str,
            ) -> Result<Response, ServeError> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                Ok(Response {
                    status: 400,
                    body: "task spec rejected".to_string(),
                })
            }
        }
        let transport = Arc::new(Rejecting::default());
        let fleet = quick_fleet(transport.clone(), &["w:1"], 5);
        let spec = TaskSpec::eval(
            &spec::profile("gzip").expect("known"),
            &xps_core::sim::CoreConfig::initial(),
            1_000,
        );
        assert_eq!(fleet.dispatch("matrix#0/0", &spec), None);
        assert_eq!(transport.calls.load(Ordering::Relaxed), 1);
        assert_eq!(fleet.stats().degraded, 1);
    }
}
