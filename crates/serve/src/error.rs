//! Typed errors of the serving layer.
//!
//! Every failure a request can hit maps to one variant here, and every
//! variant maps to one HTTP status — so handlers never invent ad-hoc
//! status codes and clients get one consistent error shape:
//! `{"error": "<message>"}` with the right status line.

use std::fmt;
use xps_core::PipelineError;

/// Everything that can fail while serving a request or running a job.
#[derive(Debug)]
pub enum ServeError {
    /// The request is syntactically or semantically malformed
    /// (unparseable JSON, unknown kind, unknown workload name). 400.
    BadRequest(String),
    /// The requested resource does not exist. 404.
    NotFound(String),
    /// The method is not supported on this path. 405.
    MethodNotAllowed {
        /// The offending method.
        method: String,
        /// The path it was attempted on.
        path: String,
    },
    /// The request body exceeds the configured limit. 413.
    TooLarge {
        /// Bytes announced or received.
        got: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The job queue is at capacity; the client should back off and
    /// retry. 429.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// A stored result record failed its checksum or did not parse;
    /// carries the path so the operator can inspect or delete it. 500.
    StoreCorrupt {
        /// Path of the bad record.
        path: std::path::PathBuf,
        /// What exactly was wrong.
        detail: String,
    },
    /// Filesystem trouble under the data directory. 500.
    Io(std::io::Error),
    /// The underlying exploration pipeline failed. 500.
    Pipeline(PipelineError),
    /// A dispatched task panicked on this worker. 500.
    TaskPanicked(String),
    /// A peer could not be reached after bounded retries; carries
    /// everything an operator needs to act (who, how hard we tried,
    /// what the transport said, how long the next backoff would be).
    /// Client-side only — never rendered as an HTTP response.
    Unreachable {
        /// The address that refused or timed out.
        addr: String,
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The backoff a further retry would wait, milliseconds.
        next_backoff_ms: u64,
        /// The last transport error observed.
        last: String,
    },
    /// The daemon is draining for shutdown and accepts no new work.
    /// 503.
    ShuttingDown,
}

impl ServeError {
    /// The HTTP status this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::TooLarge { .. } => 413,
            ServeError::QueueFull { .. } => 429,
            ServeError::StoreCorrupt { .. }
            | ServeError::Io(_)
            | ServeError::Pipeline(_)
            | ServeError::TaskPanicked(_)
            | ServeError::Unreachable { .. } => 500,
            ServeError::ShuttingDown => 503,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NotFound(what) => write!(f, "not found: {what}"),
            ServeError::MethodNotAllowed { method, path } => {
                write!(f, "method {method} not allowed on {path}")
            }
            ServeError::TooLarge { got, limit } => {
                write!(f, "body of {got} bytes exceeds the {limit}-byte limit")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} pending); retry later")
            }
            ServeError::StoreCorrupt { path, detail } => write!(
                f,
                "stored result {} is corrupt ({detail}); delete it to re-run the job",
                path.display()
            ),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Pipeline(e) => write!(f, "pipeline: {e}"),
            ServeError::TaskPanicked(msg) => write!(f, "task panicked on worker: {msg}"),
            ServeError::Unreachable {
                addr,
                attempts,
                next_backoff_ms,
                last,
            } => write!(
                f,
                "cannot reach xps-serve at {addr} after {attempts} attempt{}: {last}; \
                 is the daemon running? start one with `repro serve --addr {addr}`; \
                 a further retry would back off {next_backoff_ms} ms",
                if *attempts == 1 { "" } else { "s" }
            ),
            ServeError::ShuttingDown => write!(f, "daemon is draining for shutdown"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> ServeError {
        ServeError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_variants() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::NotFound("x".into()).status(), 404);
        assert_eq!(
            ServeError::MethodNotAllowed {
                method: "PUT".into(),
                path: "/jobs".into()
            }
            .status(),
            405
        );
        assert_eq!(ServeError::TooLarge { got: 9, limit: 1 }.status(), 413);
        assert_eq!(ServeError::QueueFull { capacity: 4 }.status(), 429);
        assert_eq!(ServeError::ShuttingDown.status(), 503);
        let corrupt = ServeError::StoreCorrupt {
            path: "/tmp/x.json".into(),
            detail: "checksum mismatch".into(),
        };
        assert_eq!(corrupt.status(), 500);
        assert!(corrupt.to_string().contains("delete it to re-run"));
    }
}
