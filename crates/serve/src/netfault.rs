//! Deterministic network fault injection for the fleet transport.
//!
//! The coordinator's failure handling — retries, backoff, quarantine,
//! local degradation — is only trustworthy if its failure paths run
//! constantly. A [`NetFaultPlan`] makes chosen transport round-trips
//! misbehave (drop the connection, delay it, truncate or garble the
//! response, duplicate the request), selected **deterministically**
//! from a per-attempt fault key and a seed — the same plan injects the
//! same faults on every run and every machine, so tests can assert
//! byte-identical gathered output under a fixed failure schedule.
//!
//! This is the network sibling of the task-level
//! [`FaultPlan`](xps_core::explore::FaultPlan) from the exploration
//! layer: same `key=value` spec idiom, same seeded hash selection,
//! configured through `XPS_NET_FAULTS` instead of `XPS_FAULTS`.

use xps_core::explore::fnv64;

/// What an injected network fault does to one round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The connection is refused/reset before any byte is exchanged.
    Drop,
    /// The round-trip is delayed by the plan's `delay_ms` first.
    Delay,
    /// The response body is cut in half mid-byte.
    Truncate,
    /// The request is sent twice (exercises worker idempotency); the
    /// second response is returned.
    Duplicate,
    /// The response body is replaced with non-JSON garbage.
    Garbage,
}

/// A seeded, deterministic plan of which round-trips misbehave.
///
/// Selection hashes the fault key (`"<task key>@<attempt>"` for task
/// dispatches, `"hb/<addr>/<n>"` for heartbeat probes) with the seed
/// into a percentile; cumulative per-kind percentage bands decide the
/// fault. Pure function of `(plan, key)` — no clock, no RNG state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultPlan {
    drop_pct: u8,
    delay_pct: u8,
    truncate_pct: u8,
    duplicate_pct: u8,
    garbage_pct: u8,
    seed: u64,
    delay_ms: u64,
}

impl NetFaultPlan {
    /// A plan injecting nothing (all rates zero).
    pub fn inert() -> NetFaultPlan {
        NetFaultPlan {
            drop_pct: 0,
            delay_pct: 0,
            truncate_pct: 0,
            duplicate_pct: 0,
            garbage_pct: 0,
            seed: 0,
            delay_ms: 10,
        }
    }

    /// Parse a `key=value` comma spec:
    /// `drop=10,delay=5,truncate=5,duplicate=5,garbage=5,seed=3,delay_ms=25`.
    /// Unset rates default to 0; `seed` to 0; `delay_ms` to 10. The
    /// rates are cumulative bands and must sum to at most 100.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first malformed field, or
    /// of a rate total above 100%.
    pub fn parse(spec: &str) -> Result<NetFaultPlan, String> {
        let mut plan = NetFaultPlan::inert();
        for field in spec.split(',').filter(|f| !f.trim().is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("net fault spec field `{field}` is not key=value"))?;
            let pct = |what: &str| -> Result<u8, String> {
                let pct: u8 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("net fault {what} `{value}` is not a percentage"))?;
                if pct > 100 {
                    return Err(format!("net fault {what} {pct} exceeds 100%"));
                }
                Ok(pct)
            };
            match key.trim() {
                "drop" => plan.drop_pct = pct("drop")?,
                "delay" => plan.delay_pct = pct("delay")?,
                "truncate" => plan.truncate_pct = pct("truncate")?,
                "duplicate" => plan.duplicate_pct = pct("duplicate")?,
                "garbage" => plan.garbage_pct = pct("garbage")?,
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("net fault seed `{value}` is not an integer"))?;
                }
                "delay_ms" => {
                    plan.delay_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("net fault delay_ms `{value}` is not an integer"))?;
                }
                other => {
                    return Err(format!(
                        "unknown net fault field `{other}` \
                         (use drop/delay/truncate/duplicate/garbage/seed/delay_ms)"
                    ))
                }
            }
        }
        let total = u32::from(plan.drop_pct)
            + u32::from(plan.delay_pct)
            + u32::from(plan.truncate_pct)
            + u32::from(plan.duplicate_pct)
            + u32::from(plan.garbage_pct);
        if total > 100 {
            return Err(format!("net fault rates sum to {total}%, above 100%"));
        }
        Ok(plan)
    }

    /// The plan configured in the `XPS_NET_FAULTS` environment
    /// variable, if any.
    ///
    /// # Errors
    ///
    /// Returns the parse failure for a malformed variable — a typo in
    /// CI should fail loudly, not silently disable injection.
    pub fn from_env() -> Result<Option<NetFaultPlan>, String> {
        match std::env::var("XPS_NET_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => NetFaultPlan::parse(&spec)
                .map(Some)
                .map_err(|e| format!("XPS_NET_FAULTS: {e}")),
            _ => Ok(None),
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_pct > 0
            || self.delay_pct > 0
            || self.truncate_pct > 0
            || self.duplicate_pct > 0
            || self.garbage_pct > 0
    }

    /// How long an injected [`NetFault::Delay`] waits, milliseconds.
    pub fn delay_ms(&self) -> u64 {
        self.delay_ms
    }

    /// The fault injected into the round-trip identified by `key`, if
    /// any. Pure function of `(plan, key)`.
    pub fn injects(&self, key: &str) -> Option<NetFault> {
        if !self.is_active() {
            return None;
        }
        let r = fnv64(self.seed, key.as_bytes()) % 100;
        let mut band = u64::from(self.drop_pct);
        if r < band {
            return Some(NetFault::Drop);
        }
        band += u64::from(self.delay_pct);
        if r < band {
            return Some(NetFault::Delay);
        }
        band += u64::from(self.truncate_pct);
        if r < band {
            return Some(NetFault::Truncate);
        }
        band += u64::from(self.duplicate_pct);
        if r < band {
            return Some(NetFault::Duplicate);
        }
        band += u64::from(self.garbage_pct);
        if r < band {
            return Some(NetFault::Garbage);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_deterministic_and_seeded() {
        let plan = NetFaultPlan::parse("drop=20,garbage=20,seed=7").expect("parses");
        for i in 0..64 {
            let key = format!("matrix#0/{i}@0");
            assert_eq!(plan.injects(&key), plan.injects(&key));
        }
        let other = NetFaultPlan::parse("drop=20,garbage=20,seed=8").expect("parses");
        let differs = (0..64).any(|i| {
            let key = format!("matrix#0/{i}@0");
            plan.injects(&key) != other.injects(&key)
        });
        assert!(differs, "different seeds must select different trips");
    }

    #[test]
    fn bands_are_cumulative_and_exhaustive_at_100() {
        let all = NetFaultPlan::parse("drop=20,delay=20,truncate=20,duplicate=20,garbage=20")
            .expect("parses");
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            let fault = all.injects(&format!("k{i}")).expect("100% always injects");
            seen.insert(format!("{fault:?}"));
        }
        assert_eq!(seen.len(), 5, "all five kinds appear: {seen:?}");
        assert_eq!(NetFaultPlan::inert().injects("k"), None);
        assert!(!NetFaultPlan::inert().is_active());
    }

    #[test]
    fn parse_rejects_malformed_and_overfull_specs() {
        assert!(NetFaultPlan::parse("drop=crash").is_err());
        assert!(NetFaultPlan::parse("drop=150").is_err());
        assert!(NetFaultPlan::parse("bogus=1").is_err());
        assert!(NetFaultPlan::parse("noequals").is_err());
        assert!(NetFaultPlan::parse("drop=60,garbage=60").is_err());
        let p = NetFaultPlan::parse("drop=10,delay_ms=250,seed=3").expect("parses");
        assert_eq!(p.delay_ms(), 250);
    }
}
