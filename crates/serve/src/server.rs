//! The daemon: TCP accept loop, request router, scheduler workers,
//! and graceful drain-and-checkpoint shutdown.
//!
//! One connection carries one request (`Connection: close`). Handler
//! threads do only cheap work — parse, enqueue, look up, render — so
//! backpressure lives entirely in the bounded [`JobQueue`]; the
//! expensive simulation happens on dedicated scheduler workers that
//! drain the queue through the [`Engine`]. Shutdown flips one shared
//! flag: the accept loop stops taking connections, the in-flight job
//! checkpoints to its journal and goes back on the persistent queue,
//! and `run` returns once the workers have drained — so a restarted
//! daemon picks the job back up and finishes it byte-identically.

use crate::engine::{is_cancelled, Engine};
use crate::error::ServeError;
use crate::http::{write_error, write_response, ChunkedWriter, Request};
use crate::metrics::{Endpoint, Metrics};
use crate::progress::ProgressHub;
use crate::queue::{JobQueue, JobStatus, SubmitOutcome};
use crate::store::{content_id, ResultStore};
use serde::Value;
use std::collections::{BTreeSet, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Most terminal (done/failed) jobs whose queue entry and progress
/// feed are retained after finishing. Past this window the oldest is
/// retired: its feed is forgotten and its job-table entry evicted, so
/// a long-running daemon's memory stays bounded. Done results remain
/// answerable from the store; streams attached to a retired feed see
/// a terminal line (see [`stream_events`]).
const RETAINED_TERMINAL_JOBS: usize = 64;

/// How the daemon is configured.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7780` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Root of the daemon's persistent state: the result store, the
    /// queue journal, and per-campaign checkpoint journals.
    pub data_dir: PathBuf,
    /// Most jobs waiting in the queue before submissions get 429.
    pub queue_capacity: usize,
    /// Scheduler worker threads draining the queue.
    pub workers: usize,
    /// Worker threads per pipeline run (0 = available parallelism).
    pub pipeline_jobs: usize,
    /// Result-store quota in bytes (`None` = unbounded). When set, a
    /// GC pass runs after every store-growing completion, evicting the
    /// oldest unpinned records until the store fits; records referenced
    /// by in-flight jobs are pinned and never evicted.
    pub store_quota_bytes: Option<u64>,
}

impl ServerConfig {
    /// Defaults rooted at `data_dir`: loopback on an ephemeral port,
    /// a queue of 64, one scheduler worker, all cores per pipeline
    /// run.
    pub fn new(data_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: data_dir.into(),
            queue_capacity: 64,
            workers: 1,
            pipeline_jobs: 0,
            store_quota_bytes: None,
        }
    }
}

/// A clonable handle that triggers graceful drain from anywhere — a
/// signal handler, a test, another thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    cancel: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Begin graceful shutdown: stop accepting work, checkpoint and
    /// requeue the in-flight job, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// Everything the handler and scheduler threads share.
struct Shared {
    queue: JobQueue,
    store: Arc<ResultStore>,
    engine: Engine,
    hub: Arc<ProgressHub>,
    metrics: Metrics,
    cancel: Arc<AtomicBool>,
    /// Store quota (bytes); `None` disables GC.
    store_quota_bytes: Option<u64>,
    /// Terminal jobs in finish order, newest last; the retention
    /// window behind [`RETAINED_TERMINAL_JOBS`].
    retired: Mutex<VecDeque<String>>,
}

impl Shared {
    /// Record that `id` finished and retire the oldest terminal jobs
    /// past the retention window: forget their feeds, evict their
    /// queue entries.
    fn retire(&self, id: &str) {
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        // A retried-after-failure job can finish twice under one id.
        retired.retain(|j| j != id);
        retired.push_back(id.to_string());
        while retired.len() > RETAINED_TERMINAL_JOBS {
            let Some(old) = retired.pop_front() else {
                break;
            };
            // A failed job resubmitted since it entered the window is
            // live again — skip it (it re-enters when it re-finishes)
            // rather than forgetting its in-use feed.
            let live = self
                .queue
                .get(&old)
                .is_some_and(|j| matches!(j.status, JobStatus::Queued | JobStatus::Running));
            if live {
                continue;
            }
            self.hub.forget(&old);
            self.queue.evict_terminal(&old);
        }
    }

    /// Store ids an in-flight campaign still references: every
    /// unfinished job's own result id plus its campaign document's id.
    /// GC must never evict these — a coordinator or client is about to
    /// read them.
    fn pinned_ids(&self) -> BTreeSet<String> {
        let mut pinned = BTreeSet::new();
        for id in self.queue.unfinished() {
            if let Some(job) = self.queue.get(&id) {
                if let Ok(req) = crate::engine::JobRequest::parse(&job.canonical) {
                    pinned.insert(content_id(&req.campaign_canonical()));
                }
            }
            pinned.insert(id);
        }
        pinned
    }

    /// Run one GC pass when a quota is configured. Failure is logged,
    /// never fatal: a store over quota serves correctly, just larger.
    fn maybe_gc(&self) {
        let Some(quota) = self.store_quota_bytes else {
            return;
        };
        match self.store.gc(quota, &self.pinned_ids()) {
            Ok(report) if !report.evicted.is_empty() => {
                self.metrics
                    .gc_pass(report.evicted.len() as u64, report.reclaimed);
            }
            Ok(_) => {}
            Err(e) => eprintln!("xps-serve: store gc failed: {e}"),
        }
    }
}

/// The bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

impl Server {
    /// Bind the listener and open (or resume) the persistent state
    /// under the configured data directory: unfinished jobs a previous
    /// process left in `queue.json` are re-queued and will be the
    /// first thing the scheduler resumes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound or the data
    /// directory is unusable; [`ServeError::StoreCorrupt`] when the
    /// persisted queue does not parse.
    pub fn bind(config: &ServerConfig) -> Result<Server, ServeError> {
        std::fs::create_dir_all(&config.data_dir)?;
        let store = Arc::new(ResultStore::open(&config.data_dir.join("store"))?);
        let queue = JobQueue::open(
            config.queue_capacity.max(1),
            &config.data_dir.join("queue.json"),
        )?;
        let hub = Arc::new(ProgressHub::new());
        let cancel = Arc::new(AtomicBool::new(false));
        let engine = Engine::new(
            config.data_dir.clone(),
            store.clone(),
            hub.clone(),
            cancel.clone(),
            config.pipeline_jobs,
        );
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                queue,
                store,
                engine,
                hub,
                metrics: Metrics::new(),
                cancel,
                store_quota_bytes: config.store_quota_bytes,
                retired: Mutex::new(VecDeque::new()),
            }),
            workers: config.workers.max(1),
        })
    }

    /// The address actually bound (resolves `:0` to the ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers graceful drain of this server.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            cancel: self.shared.cancel.clone(),
        }
    }

    /// Serve until shutdown is requested, then drain: close the
    /// queue, join the scheduler workers (the in-flight job requeues
    /// itself via cancellation), and join the connection handlers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a non-recoverable accept error.
    pub fn run(self) -> Result<(), ServeError> {
        let mut schedulers = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let shared = self.shared.clone();
            schedulers.push(
                std::thread::Builder::new()
                    .name(format!("xps-sched-{i}"))
                    .spawn(move || scheduler_loop(&shared))
                    .map_err(ServeError::from)?,
            );
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.cancel.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = self.shared.clone();
                    match std::thread::Builder::new()
                        .name("xps-conn".to_string())
                        .spawn(move || handle_connection(&shared, stream))
                    {
                        Ok(h) => handlers.push(h),
                        // Transient spawn failure (thread exhaustion)
                        // must not kill the daemon: the dropped stream
                        // closes the one connection, the accept loop
                        // lives on.
                        Err(e) => eprintln!("xps-serve: connection handler spawn failed: {e}"),
                    }
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Drain: no new submissions, wake blocked workers, let the
        // in-flight job hit its cancellation checkpoint and requeue.
        self.shared.queue.close();
        for h in schedulers {
            let _ = h.join();
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// One scheduler worker: drain jobs until the queue closes or
/// shutdown is requested. Job execution is panic-isolated — a panic
/// anywhere under `run_job` fails that job, never the worker.
fn scheduler_loop(shared: &Shared) {
    while let Some(job) = shared.queue.next_job(&shared.cancel) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.engine.run_job(&job.id, &job.canonical)
        }))
        .unwrap_or_else(|p| {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(ServeError::BadRequest(format!("job panicked: {msg}")))
        });
        match outcome {
            Ok((_, stats, profile)) => {
                shared.metrics.absorb_engine(&stats);
                if let Some(profile) = &profile {
                    shared.metrics.absorb_profile(profile);
                }
                shared.queue.complete(&job.id);
                shared.metrics.completed();
                // The job just grew the store (campaign + answer
                // documents); shrink it back under quota now that the
                // job no longer pins anything.
                shared.maybe_gc();
                shared.hub.close(
                    &job.id,
                    crate::json(&Value::Obj(vec![
                        ("event".to_string(), Value::Str("done".to_string())),
                        ("status".to_string(), Value::Str("done".to_string())),
                    ])),
                );
                shared.retire(&job.id);
            }
            Err(e) if is_cancelled(&e) => {
                // Graceful drain: completed tasks are journaled; the
                // job goes back to the front of the persistent queue
                // and resumes after restart.
                shared.queue.requeue(&job.id);
                shared.metrics.requeued();
                shared.hub.publish(
                    &job.id,
                    crate::json(&Value::Obj(vec![(
                        "event".to_string(),
                        Value::Str("requeued".to_string()),
                    )])),
                );
            }
            Err(e) => {
                shared.queue.fail(&job.id, e.to_string());
                shared.metrics.failed();
                shared.hub.close(
                    &job.id,
                    crate::json(&Value::Obj(vec![
                        ("event".to_string(), Value::Str("done".to_string())),
                        ("status".to_string(), Value::Str("failed".to_string())),
                        ("error".to_string(), Value::Str(e.to_string())),
                    ])),
                );
                shared.retire(&job.id);
            }
        }
    }
}

/// Serve one connection: parse one request, route it, record its
/// latency. All errors render as `{"error": ...}` with their status.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // xps-allow(determinism-provenance): request-latency metrics only; never reaches a result body
    let started = Instant::now();
    // Both directions are bounded: a client that stalls mid-request
    // (read) or stops draining its response (write) errors this
    // handler out instead of pinning the thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let endpoint = match Request::parse(&mut reader) {
        Err(e) => {
            let _ = write_error(&mut writer, &e);
            Endpoint::Other
        }
        Ok(req) => {
            let endpoint = classify(&req);
            if let Err(e) = route(shared, &req, &mut writer) {
                let _ = write_error(&mut writer, &e);
            }
            endpoint
        }
    };
    shared.metrics.record_latency(endpoint, started.elapsed());
}

fn classify(req: &Request) -> Endpoint {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("POST", "/jobs") => Endpoint::Submit,
        ("GET", "/metrics") => Endpoint::Metrics,
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/events") => Endpoint::Events,
        ("GET", p) if p.starts_with("/jobs/") => Endpoint::Job,
        ("POST", "/tasks") => Endpoint::Task,
        ("GET", p) if p.starts_with("/tasks/") => Endpoint::Task,
        _ => Endpoint::Other,
    }
}

fn route(shared: &Shared, req: &Request, w: &mut impl Write) -> Result<(), ServeError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => submit(shared, req, w),
        ("GET", "/metrics") => {
            let body = shared
                .metrics
                .render(shared.queue.depth(), shared.store.len()?);
            Ok(write_response(w, 200, "application/json", body.as_bytes())?)
        }
        ("GET", "/healthz") => {
            // Rich enough for a fleet coordinator's heartbeat to see a
            // worker's load, cheap enough to serve every probe.
            let body = crate::json(&Value::Obj(vec![
                ("ok".to_string(), Value::Bool(true)),
                (
                    "queue_depth".to_string(),
                    Value::U64(shared.queue.depth() as u64),
                ),
                (
                    "store_records".to_string(),
                    Value::U64(shared.store.len()? as u64),
                ),
                ("store_bytes".to_string(), Value::U64(shared.store.usage()?)),
            ]));
            Ok(write_response(w, 200, "application/json", body.as_bytes())?)
        }
        ("POST", "/tasks") => run_task(shared, req, w),
        ("GET", path) if matches!(path.strip_prefix("/tasks/"), Some(r) if !r.is_empty()) => {
            let id = path.strip_prefix("/tasks/").unwrap_or_default();
            match shared.store.get(id)? {
                Some(body) => {
                    let envelope = crate::fleet::task_envelope(&body);
                    Ok(write_response(
                        w,
                        200,
                        "application/json",
                        envelope.as_bytes(),
                    )?)
                }
                None => Err(ServeError::NotFound(format!("no task result `{id}`"))),
            }
        }
        ("GET", path) if matches!(path.strip_prefix("/jobs/"), Some(r) if !r.is_empty()) => {
            let rest = path.strip_prefix("/jobs/").unwrap_or_default();
            match rest.strip_suffix("/events") {
                Some(id) if !id.is_empty() => stream_events(shared, id, w),
                _ => job_status(shared, rest, w),
            }
        }
        ("GET" | "POST", path) => Err(ServeError::NotFound(format!("no such path `{path}`"))),
        (method, path) => Err(ServeError::MethodNotAllowed {
            method: method.to_string(),
            path: path.to_string(),
        }),
    }
}

/// `POST /tasks`: execute one wire-format [`TaskSpec`] synchronously
/// and reply with its serialized result wrapped in the checksummed
/// fleet envelope — the fleet scatter path. Results are
/// content-addressed in the store under the spec's canonical
/// fingerprint, so a duplicated or retried dispatch (lost response,
/// flaky transport) re-reads the stored bytes instead of
/// re-simulating, and `GET /tasks/<id>` can recover a result whose
/// response was lost entirely. Execution shares the daemon's
/// evaluation cache with the job pipeline.
///
/// [`TaskSpec`]: xps_core::explore::TaskSpec
fn run_task(shared: &Shared, req: &Request, w: &mut impl Write) -> Result<(), ServeError> {
    let spec: xps_core::explore::TaskSpec = serde_json::from_str(req.body_str()?)
        .map_err(|e| ServeError::BadRequest(format!("body is not a task spec: {e}")))?;
    let id = format!("task-{}", content_id(&spec.canonical()));
    if let Some(body) = shared.store.get(&id)? {
        shared.metrics.fleet_task_store_hit();
        let envelope = crate::fleet::task_envelope(&body);
        return Ok(write_response(
            w,
            200,
            "application/json",
            envelope.as_bytes(),
        )?);
    }
    // Task specs are plain data; a panicking execution (a bug or an
    // injected fault on the worker) must fail this request, never the
    // handler thread or the daemon.
    let outcome = catch_unwind(AssertUnwindSafe(|| spec.execute(shared.engine.cache())));
    let body = match outcome {
        Ok(Ok(body)) => body,
        Ok(Err(detail)) => {
            return Err(ServeError::BadRequest(format!(
                "task spec rejected: {detail}"
            )))
        }
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "task panicked".to_string());
            return Err(ServeError::TaskPanicked(msg));
        }
    };
    shared.store.put(&id, &body)?;
    shared.metrics.fleet_task_executed();
    shared.maybe_gc();
    let envelope = crate::fleet::task_envelope(&body);
    Ok(write_response(
        w,
        200,
        "application/json",
        envelope.as_bytes(),
    )?)
}

/// `POST /jobs`: canonicalize, answer from the store when the result
/// already exists, otherwise enqueue (or coalesce onto an identical
/// pending job).
fn submit(shared: &Shared, req: &Request, w: &mut impl Write) -> Result<(), ServeError> {
    let request = crate::engine::JobRequest::parse(req.body_str()?)?;
    let canonical = request.canonical();
    let id = content_id(&canonical);
    let reply = |status: u16, state: &str, source: Option<&str>| {
        let mut fields = vec![
            ("job".to_string(), Value::Str(id.clone())),
            ("status".to_string(), Value::Str(state.to_string())),
        ];
        if let Some(source) = source {
            fields.push(("source".to_string(), Value::Str(source.to_string())));
        }
        (status, crate::json(&Value::Obj(fields)))
    };
    let (status, body) = if shared.store.get(&id)?.is_some() {
        shared.metrics.store_hit();
        reply(200, "done", Some("store"))
    } else {
        match shared.queue.submit(&id, &canonical)? {
            SubmitOutcome::Created => {
                shared.metrics.submitted();
                reply(202, "queued", None)
            }
            SubmitOutcome::Coalesced(state) => {
                shared.metrics.coalesced();
                let code = if state == JobStatus::Done { 200 } else { 202 };
                reply(code, state.label(), Some("coalesced"))
            }
        }
    };
    Ok(write_response(
        w,
        status,
        "application/json",
        body.as_bytes(),
    )?)
}

/// `GET /jobs/<id>`: the stored result document for a finished job
/// (200, byte-identical for every client), a status document while it
/// is queued/running (202), the failure (500), or 404.
fn job_status(shared: &Shared, id: &str, w: &mut impl Write) -> Result<(), ServeError> {
    if let Some(body) = shared.store.get(id)? {
        return Ok(write_response(w, 200, "application/json", body.as_bytes())?);
    }
    let Some(job) = shared.queue.get(id) else {
        return Err(ServeError::NotFound(format!("no job `{id}`")));
    };
    match job.status {
        JobStatus::Failed => {
            let body = crate::json(&Value::Obj(vec![
                ("job".to_string(), Value::Str(id.to_string())),
                ("status".to_string(), Value::Str("failed".to_string())),
                (
                    "error".to_string(),
                    Value::Str(job.error.unwrap_or_else(|| "unknown".to_string())),
                ),
            ]));
            Ok(write_response(w, 500, "application/json", body.as_bytes())?)
        }
        state => {
            let body = crate::json(&Value::Obj(vec![
                ("job".to_string(), Value::Str(id.to_string())),
                ("status".to_string(), Value::Str(state.label().to_string())),
            ]));
            Ok(write_response(w, 202, "application/json", body.as_bytes())?)
        }
    }
}

/// `GET /jobs/<id>/events`: stream the job's live NDJSON feed over
/// chunked transfer until the job finishes (or the daemon drains).
fn stream_events(shared: &Shared, id: &str, w: &mut impl Write) -> Result<(), ServeError> {
    let known = shared.queue.get(id).is_some() || shared.store.get(id)?.is_some();
    if !known {
        return Err(ServeError::NotFound(format!("no job `{id}`")));
    }
    let mut cw = ChunkedWriter::start(w, 200, "application/x-ndjson")?;
    // A job already answered from the store never opened a feed; emit
    // its terminal line so streamers see a complete, closed stream.
    if shared.queue.get(id).is_none() {
        cw.chunk(b"{\"event\":\"done\",\"status\":\"done\",\"source\":\"store\"}\n")?;
        cw.finish()?;
        return Ok(());
    }
    let mut offset = 0;
    loop {
        let read = shared.hub.read_from(id, offset, Duration::from_millis(250));
        for line in &read.lines {
            cw.chunk(format!("{line}\n").as_bytes())?;
        }
        offset = read.next;
        if read.closed {
            break;
        }
        if read.lines.is_empty() && shared.queue.get(id).is_none() {
            // The job was retired from the retention window while we
            // streamed: its feed is gone, so the quiet open feed we
            // see is a fresh empty one that will never close. Emit
            // the terminal line ourselves instead of polling forever.
            let status = if shared.store.get(id)?.is_some() {
                "done"
            } else {
                "retired"
            };
            cw.chunk(
                format!("{{\"event\":\"done\",\"status\":\"{status}\",\"source\":\"store\"}}\n")
                    .as_bytes(),
            )?;
            break;
        }
        if shared.cancel.load(Ordering::Relaxed) && read.lines.is_empty() {
            cw.chunk(b"{\"event\":\"draining\"}\n")?;
            break;
        }
    }
    cw.finish()?;
    Ok(())
}

/// Install SIGTERM/SIGINT handlers that trigger graceful drain on
/// `handle`. Callable once per process; later calls replace the
/// handle the signals act on.
///
/// Hand-rolled over the C `signal` entry point (no `libc` crate — the
/// workspace stays dependency-free); the handler body is one atomic
/// store, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers(handle: ShutdownHandle) {
    use std::sync::Mutex;
    use std::sync::OnceLock;

    static HANDLE: OnceLock<Mutex<ShutdownHandle>> = OnceLock::new();

    extern "C" fn on_signal(_sig: i32) {
        if let Some(cell) = HANDLE.get() {
            // `try_lock`, not `lock`: a signal interrupting the very
            // update below must not deadlock; it will be re-sent or
            // the next signal will land.
            if let Ok(h) = cell.try_lock() {
                h.shutdown();
            }
        }
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    match HANDLE.get_or_init(|| Mutex::new(handle.clone())).lock() {
        Ok(mut slot) => *slot = handle,
        Err(poisoned) => *poisoned.into_inner() = handle,
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No-op on non-unix targets (graceful drain is still available via
/// [`ShutdownHandle`]).
#[cfg(not(unix))]
pub fn install_signal_handlers(_handle: ShutdownHandle) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_handle_flips_the_flag() {
        let cancel = Arc::new(AtomicBool::new(false));
        let handle = ShutdownHandle {
            cancel: cancel.clone(),
        };
        assert!(!handle.is_shutdown());
        handle.shutdown();
        assert!(handle.is_shutdown() && cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::new("/tmp/xps-serve-test");
        assert_eq!(c.addr, "127.0.0.1:0");
        assert_eq!(c.queue_capacity, 64);
        assert_eq!(c.workers, 1);
        assert_eq!(c.pipeline_jobs, 0);
    }
}
