//! Per-job live progress feeds.
//!
//! The engine publishes one NDJSON line per observable step (an
//! annealing iteration, a finished pool task) into its job's feed;
//! any number of streaming clients read the feed concurrently, each at
//! its own offset, over chunked HTTP. Feeds are append-only while the
//! job runs and are closed when it finishes, which is what lets a
//! streaming handler terminate its chunked response.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Most lines retained per feed; past this, publishes are counted but
/// dropped (the closing line reports how many).
pub const MAX_FEED_LINES: usize = 10_000;

#[derive(Debug, Default)]
struct Feed {
    lines: Vec<String>,
    dropped: u64,
    closed: bool,
}

/// What one read of a feed returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedRead {
    /// Lines from the requested offset onward.
    pub lines: Vec<String>,
    /// The offset to pass next time.
    pub next: usize,
    /// Whether the feed is closed (no further lines will appear).
    pub closed: bool,
}

/// The hub of all live job feeds.
#[derive(Debug, Default)]
pub struct ProgressHub {
    feeds: Mutex<HashMap<String, Feed>>,
    wake: Condvar,
}

impl ProgressHub {
    /// A hub with no feeds.
    pub fn new() -> ProgressHub {
        ProgressHub::default()
    }

    /// Append one line to a job's feed (creating the feed on first
    /// publish). Lines past [`MAX_FEED_LINES`] are dropped and
    /// counted.
    pub fn publish(&self, job: &str, line: String) {
        let mut feeds = self.feeds.lock().unwrap_or_else(PoisonError::into_inner);
        let feed = feeds.entry(job.to_string()).or_default();
        if feed.closed {
            return;
        }
        if feed.lines.len() >= MAX_FEED_LINES {
            feed.dropped += 1;
        } else {
            feed.lines.push(line);
        }
        drop(feeds);
        self.wake.notify_all();
    }

    /// Close a job's feed: append a terminal line and wake every
    /// reader.
    pub fn close(&self, job: &str, final_line: String) {
        let mut feeds = self.feeds.lock().unwrap_or_else(PoisonError::into_inner);
        let feed = feeds.entry(job.to_string()).or_default();
        if !feed.closed {
            if feed.dropped > 0 {
                feed.lines.push(format!(
                    "{{\"event\":\"dropped\",\"lines\":{}}}",
                    feed.dropped
                ));
            }
            feed.lines.push(final_line);
            feed.closed = true;
        }
        drop(feeds);
        self.wake.notify_all();
    }

    /// Read a feed from `offset`, blocking up to `wait` for news when
    /// nothing is pending. A job with no feed yet reads as empty and
    /// open.
    pub fn read_from(&self, job: &str, offset: usize, wait: Duration) -> FeedRead {
        let mut feeds = self.feeds.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(feed) = feeds.get(job) {
                if feed.lines.len() > offset || feed.closed {
                    let lines = feed.lines[offset.min(feed.lines.len())..].to_vec();
                    return FeedRead {
                        next: offset + lines.len(),
                        lines,
                        closed: feed.closed,
                    };
                }
            }
            let (next, timeout) = self
                .wake
                .wait_timeout(feeds, wait)
                .unwrap_or_else(PoisonError::into_inner);
            feeds = next;
            if timeout.timed_out() {
                let closed = feeds.get(job).is_some_and(|f| f.closed);
                return FeedRead {
                    lines: Vec::new(),
                    next: offset,
                    closed,
                };
            }
        }
    }

    /// Drop a feed entirely (frees memory once its job's result is in
    /// the store and no streamer needs history).
    pub fn forget(&self, job: &str) {
        self.feeds
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn readers_see_lines_in_order_then_close() {
        let hub = ProgressHub::new();
        hub.publish("j", "a".into());
        hub.publish("j", "b".into());
        let r = hub.read_from("j", 0, Duration::from_millis(1));
        assert_eq!(r.lines, vec!["a", "b"]);
        assert_eq!(r.next, 2);
        assert!(!r.closed);
        hub.close("j", "end".into());
        let r = hub.read_from("j", r.next, Duration::from_millis(1));
        assert_eq!(r.lines, vec!["end"]);
        assert!(r.closed);
        // Publishing after close is ignored.
        hub.publish("j", "late".into());
        let r = hub.read_from("j", 3, Duration::from_millis(1));
        assert!(r.lines.is_empty() && r.closed);
    }

    #[test]
    fn blocking_reader_wakes_on_publish() {
        let hub = Arc::new(ProgressHub::new());
        let h2 = hub.clone();
        let t = std::thread::spawn(move || h2.read_from("j", 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        hub.publish("j", "x".into());
        let r = t.join().expect("no panic");
        assert_eq!(r.lines, vec!["x"]);
    }

    #[test]
    fn unknown_feed_reads_empty_and_open() {
        let hub = ProgressHub::new();
        let r = hub.read_from("nope", 0, Duration::from_millis(1));
        assert!(r.lines.is_empty() && !r.closed && r.next == 0);
    }

    #[test]
    fn forget_frees_the_feed() {
        let hub = ProgressHub::new();
        hub.publish("j", "a".into());
        hub.close("j", "end".into());
        hub.forget("j");
        // A forgotten feed reads like one that never existed — empty
        // and open — which is why streamers must detect retirement
        // via the job table rather than the feed (see the server's
        // `stream_events`).
        let r = hub.read_from("j", 0, Duration::from_millis(1));
        assert!(r.lines.is_empty() && !r.closed && r.next == 0);
    }
}
