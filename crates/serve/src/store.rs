//! The content-addressed result store.
//!
//! A finished job's response body is immutable: it is a pure function
//! of the canonical request (workload specs, configuration grid,
//! profile), so the store addresses records by the FNV-64 fingerprint
//! of that canonical request. A repeated request — today, after a
//! restart, from another client — is answered byte-identically from
//! disk without re-running a single simulation.
//!
//! Records are one file per id under `store/` in the data directory:
//! a header line carrying the id and a checksum of the body, then the
//! body verbatim. Writes go through a temp file + rename
//! ([`write_atomic`]), so a crash mid-write leaves either the old
//! record or none — never a torn one. Reads verify the checksum and
//! reject tampered or truncated records with an error that names the
//! file.

use crate::error::ServeError;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use xps_core::explore::{fnv64, write_atomic};

/// Fingerprint seed for store ids (distinct from the journal's record
/// seed so the two keyspaces never collide).
const ID_SEED: u64 = 0x5345_5256_4549_4453; // "SERVEIDS"
/// Fingerprint seed for body checksums.
const SUM_SEED: u64 = 0x5345_5256_4553_554d; // "SERVESUM"

/// Fingerprint a canonical request into its 16-hex-digit store id.
pub fn content_id(canonical: &str) -> String {
    format!("{:016x}", fnv64(ID_SEED, canonical.as_bytes()))
}

/// Checksum a record body the way [`ResultStore::put`] does, as
/// 16-hex digits. Exported so offline validators (`xps-analyze data`)
/// can verify store records without knowing the private seed.
pub fn body_checksum(body: &str) -> String {
    format!("{:016x}", fnv64(SUM_SEED, body.as_bytes()))
}

/// A directory of checksummed, content-addressed result records.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) the store under `dir`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be created.
    pub fn open(dir: &Path) -> Result<ResultStore, ServeError> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
        })
    }

    fn path_of(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    /// Persist `body` under `id` (atomic temp + rename; overwrites an
    /// existing record, which by construction holds the same bytes).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the write fails.
    pub fn put(&self, id: &str, body: &str) -> Result<(), ServeError> {
        let sum = fnv64(SUM_SEED, body.as_bytes());
        let record = format!("{id} {sum:016x}\n{body}");
        write_atomic(&self.path_of(id), &record)?;
        Ok(())
    }

    /// Fetch the body stored under `id`, verifying the checksum.
    /// `Ok(None)` when no record exists.
    ///
    /// # Errors
    ///
    /// [`ServeError::StoreCorrupt`] (naming the file) when the record
    /// is malformed, mislabeled, or fails its checksum;
    /// [`ServeError::Io`] on read failure.
    pub fn get(&self, id: &str) -> Result<Option<String>, ServeError> {
        let path = self.path_of(id);
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let corrupt = |detail: String| ServeError::StoreCorrupt {
            path: path.clone(),
            detail,
        };
        let (header, body) = raw
            .split_once('\n')
            .ok_or_else(|| corrupt("missing header line".into()))?;
        let (stored_id, stored_sum) = header
            .split_once(' ')
            .ok_or_else(|| corrupt(format!("malformed header `{header}`")))?;
        if stored_id != id {
            return Err(corrupt(format!(
                "record is addressed `{stored_id}`, expected `{id}`"
            )));
        }
        let sum = fnv64(SUM_SEED, body.as_bytes());
        if format!("{sum:016x}") != stored_sum {
            return Err(corrupt(format!(
                "checksum mismatch: header says {stored_sum}, body hashes to {sum:016x}"
            )));
        }
        Ok(Some(body.to_string()))
    }

    /// Number of records on disk.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be listed.
    pub fn len(&self) -> Result<usize, ServeError> {
        Ok(std::fs::read_dir(&self.dir)?.count())
    }

    /// Whether the store holds no records.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be listed.
    pub fn is_empty(&self) -> Result<bool, ServeError> {
        Ok(self.len()? == 0)
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total bytes the store occupies on disk (quota accounting).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be listed.
    pub fn usage(&self) -> Result<u64, ServeError> {
        let mut total = 0u64;
        for entry in std::fs::read_dir(&self.dir)? {
            total = total.saturating_add(entry?.metadata()?.len());
        }
        Ok(total)
    }

    /// Garbage-collect down to `quota_bytes`: evict unpinned records,
    /// oldest first (modification time, record id as the tiebreak),
    /// until the store fits the quota or only pinned records remain.
    /// A pinned record — one referenced by an in-flight campaign — is
    /// never evicted, even when the pins alone exceed the quota.
    ///
    /// Eviction is pure cache policy: a future request for an evicted
    /// result re-runs the deterministic engine and stores the
    /// identical bytes back, so GC can never change an answer.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be listed or a
    /// record cannot be removed.
    pub fn gc(&self, quota_bytes: u64, pinned: &BTreeSet<String>) -> Result<GcReport, ServeError> {
        let mut records: Vec<(std::time::SystemTime, String, u64)> = Vec::new();
        let mut usage = 0u64;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            let size = meta.len();
            usage = usage.saturating_add(size);
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(id) = name.strip_suffix(".json") else {
                continue;
            };
            // Modification times order eviction candidates; they are
            // never serialized and never influence a result body, so
            // reading the clock here cannot perturb determinism.
            let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            records.push((modified, id.to_string(), size));
        }
        records.sort();
        let mut report = GcReport {
            usage,
            reclaimed: 0,
            evicted: Vec::new(),
        };
        for (_, id, size) in records {
            if report.usage <= quota_bytes {
                break;
            }
            if pinned.contains(&id) {
                continue;
            }
            std::fs::remove_file(self.path_of(&id))?;
            report.usage = report.usage.saturating_sub(size);
            report.reclaimed = report.reclaimed.saturating_add(size);
            report.evicted.push(id);
        }
        Ok(report)
    }
}

/// What one [`ResultStore::gc`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Store bytes remaining after the pass.
    pub usage: u64,
    /// Bytes reclaimed by this pass.
    pub reclaimed: u64,
    /// Ids evicted by this pass, in eviction order.
    pub evicted: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xps-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let a = content_id("{\"kind\":\"explore\"}");
        assert_eq!(a, content_id("{\"kind\":\"explore\"}"));
        assert_eq!(a.len(), 16);
        assert_ne!(a, content_id("{\"kind\":\"evaluate\"}"));
    }

    #[test]
    fn put_get_round_trips() {
        let store = ResultStore::open(&tmp("roundtrip")).expect("open");
        let id = content_id("req");
        assert_eq!(store.get(&id).expect("clean miss"), None);
        store.put(&id, "{\"ok\":true}\n").expect("put");
        assert_eq!(
            store.get(&id).expect("hit").as_deref(),
            Some("{\"ok\":true}\n")
        );
        assert_eq!(store.len().expect("len"), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_record_is_an_actionable_error() {
        let store = ResultStore::open(&tmp("corrupt")).expect("open");
        let id = content_id("req");
        store.put(&id, "payload").expect("put");
        let path = store.dir().join(format!("{id}.json"));
        let mut raw = std::fs::read_to_string(&path).expect("read");
        raw.push_str("tampered");
        std::fs::write(&path, raw).expect("tamper");
        let e = store.get(&id).expect_err("detected");
        let msg = e.to_string();
        assert!(msg.contains("checksum mismatch"), "{msg}");
        assert!(msg.contains(&format!("{id}.json")), "names the file: {msg}");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    fn stamp(store: &ResultStore, id: &str, age_rank: u64) {
        // Deterministic mtimes: rank 0 is oldest. Sidesteps filesystem
        // timestamp granularity for records written back to back.
        let f = std::fs::File::options()
            .write(true)
            .open(store.dir().join(format!("{id}.json")))
            .expect("record exists");
        f.set_modified(
            std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(age_rank),
        )
        .expect("set mtime");
    }

    #[test]
    fn gc_evicts_oldest_unpinned_until_quota() {
        let store = ResultStore::open(&tmp("gc")).expect("open");
        let ids: Vec<String> = (0..5).map(|i| content_id(&format!("req{i}"))).collect();
        for (rank, id) in ids.iter().enumerate() {
            store.put(id, &"x".repeat(100)).expect("put");
            stamp(&store, id, rank as u64);
        }
        let record = store.usage().expect("usage") / 5;
        // Quota for three records; the two oldest must go — except the
        // oldest is pinned, so ranks 1 and 2 are evicted instead.
        let pinned: BTreeSet<String> = [ids[0].clone()].into();
        let report = store.gc(3 * record, &pinned).expect("gc");
        assert_eq!(report.evicted, vec![ids[1].clone(), ids[2].clone()]);
        assert_eq!(report.reclaimed, 2 * record);
        assert!(report.usage <= 3 * record);
        assert!(store.get(&ids[0]).expect("read").is_some(), "pinned kept");
        assert!(store.get(&ids[1]).expect("read").is_none(), "evicted");
        assert!(store.get(&ids[4]).expect("read").is_some(), "newest kept");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_never_evicts_pinned_even_at_zero_quota() {
        let store = ResultStore::open(&tmp("gc-pinned")).expect("open");
        let pinned_id = content_id("keep");
        store.put(&pinned_id, "precious").expect("put");
        store.put(&content_id("drop"), "expendable").expect("put");
        let pinned: BTreeSet<String> = [pinned_id.clone()].into();
        let report = store.gc(0, &pinned).expect("gc");
        assert_eq!(report.evicted, vec![content_id("drop")]);
        assert!(store.get(&pinned_id).expect("read").is_some());
        assert_eq!(store.len().expect("len"), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn mislabeled_record_is_rejected() {
        let store = ResultStore::open(&tmp("mislabel")).expect("open");
        store.put(&content_id("a"), "body-a").expect("put");
        // Copy a's record over b's address: the id check must fire.
        let a_path = store.dir().join(format!("{}.json", content_id("a")));
        let b_path = store.dir().join(format!("{}.json", content_id("b")));
        std::fs::copy(&a_path, &b_path).expect("copy");
        let e = store.get(&content_id("b")).expect_err("mislabeled");
        assert!(e.to_string().contains("addressed"));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
