//! `xps-serve`: exploration-as-a-service over the `xp-scalar`
//! pipeline.
//!
//! The batch `repro` binary answers one question per invocation and
//! re-simulates from scratch every time. This crate turns the same
//! deterministic engine into a long-lived daemon: clients POST JSON
//! job requests (explore a workload set, evaluate one workload on
//! another's customized architecture, best k-core combination,
//! slowdown rows) over a hand-rolled, dependency-free HTTP/1.1 layer;
//! jobs flow through a bounded FIFO [`JobQueue`] with backpressure
//! (overflow → 429) into scheduler workers that drive the existing
//! parallel worker pool and shared [`EvalCache`](xps_core::explore::EvalCache);
//! finished bodies land in a content-addressed, checksummed
//! [`ResultStore`], so a repeated request — today, from another
//! client, after a restart — is answered byte-identically without one
//! new simulation.
//!
//! Clients poll `GET /jobs/<id>` or stream live NDJSON progress
//! (anneal step, temperature, best IPT, cache hit rate) from
//! `GET /jobs/<id>/events` over chunked transfer; `GET /metrics`
//! exposes queue depth, job counters, cache hit/miss rates, and
//! per-endpoint latency histograms. Shutdown (SIGTERM / ctrl-c) is a
//! graceful drain: the in-flight job checkpoints to its journal, goes
//! back on the persistent queue, and a restarted daemon resumes it —
//! completing byte-identically — from where it stopped.
//!
//! Module map:
//!
//! * [`http`] — minimal HTTP/1.1 request parsing, fixed and chunked
//!   response framing, over generic `BufRead`/`Write`.
//! * [`store`] — the content-addressed result store (FNV fingerprints,
//!   atomic checksummed records).
//! * [`queue`] — the bounded, persistent, coalescing job queue.
//! * [`engine`] — request canonicalization and job execution over the
//!   pipeline.
//! * [`progress`] — per-job live feeds behind the streaming endpoint.
//! * [`metrics`] — daemon-wide counters and latency histograms.
//! * [`server`] — the TCP daemon tying all of it together.
//! * [`client`] — a tiny blocking HTTP client (examples, tests, smoke
//!   runs).
//! * [`transport`] — the fleet wire layer: deadline-bounded TCP plus
//!   a deterministic fault-injecting wrapper.
//! * [`netfault`] — seeded network fault plans (`XPS_NET_FAULTS`).
//! * [`fleet`] — the scatter-gather coordinator: heartbeats, bounded
//!   retries with deterministic backoff, quarantine, and graceful
//!   degradation to local execution.

pub mod client;
mod engine;
mod error;
mod fleet;
pub mod http;
mod metrics;
mod netfault;
mod progress;
mod queue;
mod server;
mod store;
mod transport;

pub use engine::{is_cancelled, Engine, JobRequest, Profile, Question};
pub use error::ServeError;
pub use fleet::{
    run_campaign_with_fleet, Fleet, FleetConfig, FleetReport, FleetStats, WorkerSnapshot,
};
pub use metrics::{Endpoint, Metrics, LATENCY_BUCKETS_US};
pub use netfault::{NetFault, NetFaultPlan};
pub use progress::{FeedRead, ProgressHub, MAX_FEED_LINES};
pub use queue::{Job, JobQueue, JobStatus, SubmitOutcome};
pub use server::{install_signal_handlers, Server, ServerConfig, ShutdownHandle};
pub use store::{body_checksum, content_id, GcReport, ResultStore};
pub use transport::{FlakyTransport, TcpTransport, Transport};

/// Render a JSON value the daemon built itself. Infallible by
/// construction: every number the daemon emits is finite.
pub(crate) fn json(v: &serde::Value) -> String {
    // xps-allow(no-unwrap-in-lib): daemon documents are built from validated finite values; serialization cannot fail
    serde_json::to_string(v).expect("daemon documents contain only finite numbers")
}
