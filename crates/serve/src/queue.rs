//! The bounded FIFO job queue and job table.
//!
//! Submissions land here: each job is keyed by its content id (the
//! fingerprint of its canonical request), so identical requests
//! coalesce onto one queue entry instead of running twice. The queue
//! is bounded — a submission past capacity is refused with a typed
//! error the HTTP layer renders as 429 — and persistent: the pending
//! set (including the job being executed) is mirrored to `queue.json`
//! in the data directory on every change, atomically, so a daemon
//! killed mid-job re-queues exactly the unfinished work on restart.

use crate::error::ServeError;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;
use xps_core::explore::write_atomic;

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the FIFO.
    Queued,
    /// Being executed by a scheduler worker.
    Running,
    /// Finished; the result body is in the store.
    Done,
    /// Failed terminally; the error message is on the job.
    Failed,
}

impl JobStatus {
    /// The wire name of this status.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Content id: the fingerprint of the canonical request.
    pub id: String,
    /// The canonical request JSON (what the engine executes).
    pub canonical: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Terminal error message, for failed jobs.
    pub error: Option<String>,
}

/// What a submission did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// A new queue entry was created.
    Created,
    /// An identical job already exists (in the given state); the
    /// submission coalesced onto it.
    Coalesced(JobStatus),
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<String>,
    jobs: HashMap<String, Job>,
    closed: bool,
}

/// The bounded, persistent, coalescing job queue.
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    wake: Condvar,
    persist: Option<PathBuf>,
}

impl JobQueue {
    /// An in-memory queue (tests).
    pub fn in_memory(capacity: usize) -> JobQueue {
        JobQueue {
            capacity,
            state: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
            persist: None,
        }
    }

    /// A queue persisted to `path`, re-queueing any jobs a previous
    /// process left unfinished there.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file exists but cannot be read, and
    /// [`ServeError::StoreCorrupt`] when it does not parse.
    pub fn open(capacity: usize, path: &Path) -> Result<JobQueue, ServeError> {
        let queue = JobQueue {
            persist: Some(path.to_path_buf()),
            ..JobQueue::in_memory(capacity)
        };
        match std::fs::read_to_string(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
            Ok(raw) => {
                let corrupt = |detail: String| ServeError::StoreCorrupt {
                    path: path.to_path_buf(),
                    detail,
                };
                let value = serde_json::from_str::<serde::Value>(&raw)
                    .map_err(|e| corrupt(format!("queue journal does not parse: {e}")))?;
                let pending = match value.member("pending").map_err(&corrupt)? {
                    serde::Value::Arr(items) => items.clone(),
                    other => return Err(corrupt(format!("`pending` is not an array: {other:?}"))),
                };
                let mut state = queue.state.lock().unwrap_or_else(PoisonError::into_inner);
                for item in &pending {
                    let id = item.member("id").and_then(|v| v.as_str().map(String::from));
                    let canonical = item
                        .member("canonical")
                        .and_then(|v| v.as_str().map(String::from));
                    let (id, canonical) = match (id, canonical) {
                        (Ok(id), Ok(c)) => (id, c),
                        _ => return Err(corrupt(format!("malformed pending entry {item:?}"))),
                    };
                    state.pending.push_back(id.clone());
                    state.jobs.insert(
                        id.clone(),
                        Job {
                            id,
                            canonical,
                            status: JobStatus::Queued,
                            error: None,
                        },
                    );
                }
                drop(state);
            }
        }
        Ok(queue)
    }

    fn persist_locked(&self, state: &QueueState) -> Result<(), ServeError> {
        let Some(path) = &self.persist else {
            return Ok(());
        };
        // Queued and Running jobs are both unfinished work a restarted
        // daemon must pick back up; completed results live in the
        // store, failed jobs are not retried automatically. Running
        // jobs persist *ahead of* the pending FIFO so that even after
        // a hard kill (no graceful requeue) the restarted daemon
        // resumes the interrupted job first, matching `requeue`'s
        // contract. The job table is a HashMap, so the running set is
        // sorted by id before it reaches the journal bytes — the
        // persisted file must be identical for identical queue state,
        // whatever the hash order.
        let mut running: Vec<&String> = state
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .map(|j| &j.id)
            .collect();
        running.sort();
        let entries: Vec<serde::Value> = running
            .into_iter()
            .chain(state.pending.iter())
            .filter_map(|id| state.jobs.get(id))
            .map(|j| {
                serde::Value::Obj(vec![
                    ("id".to_string(), serde::Value::Str(j.id.clone())),
                    (
                        "canonical".to_string(),
                        serde::Value::Str(j.canonical.clone()),
                    ),
                ])
            })
            .collect();
        let doc = serde::Value::Obj(vec![("pending".to_string(), serde::Value::Arr(entries))]);
        write_atomic(path, &crate::json(&doc))?;
        Ok(())
    }

    /// Submit a job: coalesce onto an identical queued/running/done
    /// one, or enqueue a new entry. A previously *failed* identical
    /// job does not coalesce — its entry is evicted and the submission
    /// retries it fresh.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] past capacity,
    /// [`ServeError::ShuttingDown`] once the queue is closed, and
    /// [`ServeError::Io`] when persisting fails.
    pub fn submit(&self, id: &str, canonical: &str) -> Result<SubmitOutcome, ServeError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if let Some(job) = state.jobs.get(id) {
            if job.status != JobStatus::Failed {
                return Ok(SubmitOutcome::Coalesced(job.status));
            }
            // A failed job is retriable: evict the terminal entry and
            // fall through to enqueue a fresh attempt, rather than
            // parroting the stale failure back as a 202 forever.
            state.jobs.remove(id);
        }
        if state.pending.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        state.pending.push_back(id.to_string());
        state.jobs.insert(
            id.to_string(),
            Job {
                id: id.to_string(),
                canonical: canonical.to_string(),
                status: JobStatus::Queued,
                error: None,
            },
        );
        self.persist_locked(&state)?;
        drop(state);
        self.wake.notify_one();
        Ok(SubmitOutcome::Created)
    }

    /// Block until a job is available (marking it running) or the
    /// queue is closed / `cancel` is set (returning `None`).
    pub fn next_job(&self, cancel: &AtomicBool) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.closed || cancel.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(id) = state.pending.pop_front() {
                // A pending id without a job entry would be a journal
                // inconsistency; skip it rather than panic a worker.
                let Some(job) = state.jobs.get_mut(&id) else {
                    continue;
                };
                job.status = JobStatus::Running;
                let job = job.clone();
                // Running jobs stay persisted so a kill re-queues them.
                let _ = self.persist_locked(&state);
                return Some(job);
            }
            let (next, _) = self
                .wake
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }

    /// Mark a job done (its body is in the store).
    pub fn complete(&self, id: &str) {
        self.finish(id, JobStatus::Done, None);
    }

    /// Mark a job terminally failed.
    pub fn fail(&self, id: &str, error: String) {
        self.finish(id, JobStatus::Failed, Some(error));
    }

    fn finish(&self, id: &str, status: JobStatus, error: Option<String>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(job) = state.jobs.get_mut(id) {
            job.status = status;
            job.error = error;
        }
        let _ = self.persist_locked(&state);
    }

    /// Put a cancelled in-flight job back at the *front* of the queue
    /// (it resumes first, from its journal, after a restart).
    pub fn requeue(&self, id: &str) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(job) = state.jobs.get_mut(id) {
            job.status = JobStatus::Queued;
            job.error = None;
            if !state.pending.contains(&id.to_string()) {
                state.pending.push_front(id.to_string());
            }
        }
        let _ = self.persist_locked(&state);
        drop(state);
        self.wake.notify_one();
    }

    /// Drop a terminal (done or failed) job from the table, bounding
    /// the daemon's memory. A no-op for unfinished jobs — a job
    /// requeued after graceful drain is never evicted. Done results
    /// remain answerable from the store; an evicted failure reads as
    /// 404 and may simply be resubmitted.
    pub fn evict_terminal(&self, id: &str) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state
            .jobs
            .get(id)
            .is_some_and(|j| matches!(j.status, JobStatus::Done | JobStatus::Failed))
        {
            state.jobs.remove(id);
        }
    }

    /// Look up a job by id.
    pub fn get(&self, id: &str) -> Option<Job> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .get(id)
            .cloned()
    }

    /// Jobs currently waiting (excludes the running ones).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .len()
    }

    /// Ids of all unfinished (queued or running) jobs, queue order.
    /// Running ids (not FIFO-ordered — they live in the hash-keyed
    /// job table) are sorted so the answer is deterministic.
    pub fn unfinished(&self) -> Vec<String> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut running: Vec<String> = state
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .map(|j| j.id.clone())
            .collect();
        running.sort();
        state.pending.iter().cloned().chain(running).collect()
    }

    /// Refuse new submissions and wake every blocked worker.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_coalescing() {
        let q = JobQueue::in_memory(8);
        assert_eq!(q.submit("a", "{\"a\"}").expect("a"), SubmitOutcome::Created);
        assert_eq!(q.submit("b", "{\"b\"}").expect("b"), SubmitOutcome::Created);
        assert_eq!(
            q.submit("a", "{\"a\"}").expect("dup"),
            SubmitOutcome::Coalesced(JobStatus::Queued)
        );
        assert_eq!(q.depth(), 2);
        let cancel = AtomicBool::new(false);
        let first = q.next_job(&cancel).expect("first");
        assert_eq!(first.id, "a");
        assert_eq!(first.status, JobStatus::Running);
        assert_eq!(
            q.submit("a", "{\"a\"}").expect("dup while running"),
            SubmitOutcome::Coalesced(JobStatus::Running)
        );
        q.complete("a");
        assert_eq!(q.get("a").expect("tracked").status, JobStatus::Done);
        assert_eq!(q.next_job(&cancel).expect("second").id, "b");
    }

    #[test]
    fn capacity_is_enforced() {
        let q = JobQueue::in_memory(2);
        q.submit("a", "{}").expect("a");
        q.submit("b", "{}").expect("b");
        let e = q.submit("c", "{}").expect_err("full");
        assert!(matches!(e, ServeError::QueueFull { capacity: 2 }));
        assert_eq!(e.status(), 429);
    }

    #[test]
    fn cancel_and_close_unblock_workers() {
        let q = JobQueue::in_memory(2);
        let cancelled = AtomicBool::new(true);
        assert!(q.next_job(&cancelled).is_none());
        q.close();
        assert!(q.next_job(&AtomicBool::new(false)).is_none());
        assert!(matches!(q.submit("a", "{}"), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn unfinished_work_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("xps-queue-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("dir");
        let path = dir.join("queue.json");
        {
            let q = JobQueue::open(8, &path).expect("open fresh");
            q.submit("a", "{\"k\":\"a\"}").expect("a");
            q.submit("b", "{\"k\":\"b\"}").expect("b");
            q.submit("c", "{\"k\":\"c\"}").expect("c");
            let cancel = AtomicBool::new(false);
            let running = q.next_job(&cancel).expect("a runs");
            assert_eq!(running.id, "a");
            // `a` completes, `b` is mid-flight when the process dies,
            // `c` never started.
            q.complete("a");
            let b = q.next_job(&cancel).expect("b runs");
            assert_eq!(b.id, "b");
        }
        let q = JobQueue::open(8, &path).expect("reopen");
        // The running job and the queued job are back — the
        // interrupted job *first*, so a restart resumes it before
        // anything queued behind it — and the completed one is not.
        assert_eq!(q.unfinished(), vec!["b".to_string(), "c".to_string()]);
        assert!(q.get("a").is_none());
        assert_eq!(
            q.get("b").expect("b back").canonical,
            "{\"k\":\"b\"}",
            "canonical request round-trips"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_jobs_are_retried_on_resubmit() {
        let q = JobQueue::in_memory(8);
        q.submit("a", "{}").expect("a");
        let cancel = AtomicBool::new(false);
        q.next_job(&cancel).expect("a runs");
        q.fail("a", "boom".to_string());
        assert_eq!(q.get("a").expect("tracked").status, JobStatus::Failed);
        // Resubmitting enqueues a fresh attempt instead of coalescing
        // onto the dead entry.
        assert_eq!(q.submit("a", "{}").expect("retry"), SubmitOutcome::Created);
        let retried = q.get("a").expect("tracked");
        assert_eq!(retried.status, JobStatus::Queued);
        assert_eq!(retried.error, None);
        assert_eq!(q.next_job(&cancel).expect("runs again").id, "a");
    }

    #[test]
    fn evict_terminal_drops_finished_jobs_only() {
        let q = JobQueue::in_memory(8);
        q.submit("a", "{}").expect("a");
        q.submit("b", "{}").expect("b");
        let cancel = AtomicBool::new(false);
        q.next_job(&cancel).expect("a runs");
        q.complete("a");
        q.evict_terminal("a");
        assert!(q.get("a").is_none());
        // Queued and running jobs are never evicted.
        q.evict_terminal("b");
        assert!(q.get("b").is_some());
        let b = q.next_job(&cancel).expect("b runs");
        q.evict_terminal(&b.id);
        assert_eq!(
            q.get("b").expect("still running").status,
            JobStatus::Running
        );
    }

    #[test]
    fn requeue_puts_job_at_the_front() {
        let q = JobQueue::in_memory(8);
        q.submit("a", "{}").expect("a");
        q.submit("b", "{}").expect("b");
        let cancel = AtomicBool::new(false);
        let a = q.next_job(&cancel).expect("a runs");
        q.requeue(&a.id);
        assert_eq!(q.get("a").expect("a").status, JobStatus::Queued);
        assert_eq!(q.next_job(&cancel).expect("front").id, "a");
    }
}
