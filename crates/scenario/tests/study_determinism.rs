//! End-to-end determinism of the scale study: the canonical report
//! must be byte-identical across worker counts and reruns, and its
//! numbers must be internally consistent.

use xps_core::explore::RunContext;
use xps_scenario::{run_study, Family, PopulationSpec, StudyOptions, StudyReport};

/// A tiny but real study: 8 workloads, one panel per family mix,
/// seconds even in debug builds.
fn tiny_study(jobs: usize) -> StudyReport {
    let spec = PopulationSpec::all_families(8, 0xA11CE);
    let mut opts = StudyOptions::smoke();
    opts.pipeline.explore.anneal.iterations = 4;
    opts.pipeline.explore.anneal.eval_ops_early = 1_500;
    opts.pipeline.explore.anneal.eval_ops_late = 3_000;
    opts.pipeline.matrix_ops = 3_000;
    opts.characterize_ops = 3_000;
    opts.pipeline.explore.jobs = jobs;
    let ctx = RunContext::from_env().expect("clean env or valid XPS_FAULTS");
    run_study(&spec, &opts, &ctx).expect("study completes")
}

#[test]
fn report_is_byte_identical_across_jobs_and_reruns() {
    let one = tiny_study(1);
    let four = tiny_study(4);
    assert_eq!(
        one.canonical(),
        four.canonical(),
        "study report must not depend on --jobs"
    );
    let again = tiny_study(1);
    assert_eq!(one.canonical(), again.canonical(), "reruns are stable");
}

#[test]
fn report_is_internally_consistent() {
    let r = tiny_study(0);
    assert_eq!(r.n, 8);
    assert_eq!(r.families, vec!["expected", "stress", "adversarial"]);
    assert_eq!(r.panels.len(), 1, "8 workloads, panel 8: one panel");
    let p = &r.panels[0];
    assert_eq!(p.workloads.len(), 8);
    assert_eq!(p.pitfalls.len(), 8, "one pitfall experiment per member");
    assert!(
        p.customize_value >= p.subset_value - 1e-12,
        "customize-first is the optimum by construction: {} vs {}",
        p.customize_value,
        p.subset_value
    );
    assert!(p.gap >= 0.0, "gap is a non-negative loss");
    assert_eq!(r.pitfall_experiments, 8);
    assert_eq!(
        r.pitfall_hits,
        r.panels
            .iter()
            .flat_map(|p| &p.pitfalls)
            .filter(|p| p.hit)
            .count()
    );
    assert_eq!(
        r.gap.histogram.iter().sum::<u64>() as usize,
        r.panels.len(),
        "every panel lands in exactly one gap bucket"
    );
    // Family aggregation covers the whole population.
    assert_eq!(r.per_family.iter().map(|f| f.workloads).sum::<usize>(), 8);
    assert_eq!(
        r.per_family
            .iter()
            .map(|f| f.pitfall_experiments)
            .sum::<usize>(),
        8
    );
    for f in &r.per_family {
        assert!(Family::parse(&f.family).is_ok(), "family names round-trip");
    }
}

#[test]
fn canonical_json_parses_and_orders_fields() {
    let r = tiny_study(2);
    let json = r.canonical();
    let v: serde::Value = serde_json::from_str(&json).expect("canonical JSON parses");
    assert!(json.starts_with("{\"families\""), "field order is stable");
    match v.member("n").expect("n present") {
        serde::Value::U64(n) => assert_eq!(*n, 8),
        other => panic!("n should be an integer, got {other:?}"),
    }
}
