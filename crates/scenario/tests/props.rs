//! Property tests pinning the generator's domain-validity and
//! determinism contracts.

use proptest::prelude::*;
use xps_core::workload::TraceGenerator;
use xps_scenario::{derive_seed, generate_profile, Family, PopulationSpec};

proptest! {
    /// The acceptance criterion of the subsystem: every generated
    /// profile — any seed, any family, any index — validates against
    /// the existing `workload` domain invariants.
    #[test]
    fn every_generated_profile_validates(
        seed in any::<u64>(),
        family_idx in 0usize..3,
        index in 0u64..10_000,
    ) {
        let family = Family::ALL[family_idx];
        let p = generate_profile(seed, family, index);
        prop_assert!(p.validate().is_ok(), "{}: {:?}", p.name, p.validate());
        prop_assert!(p.name.starts_with(family.name()));
        prop_assert!(p.weight > 0.0);
    }

    /// Generation is a pure function of its three inputs.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), index in 0u64..512) {
        for family in Family::ALL {
            let a = generate_profile(seed, family, index);
            let b = generate_profile(seed, family, index);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    /// Distinct (seed, index) pairs get distinct derived seeds in
    /// practice — the mix avalanches instead of, say, adding.
    #[test]
    fn derived_seeds_spread(seed in any::<u64>(), index in 0u64..512) {
        let s0 = derive_seed(seed, Family::Expected, index);
        let s1 = derive_seed(seed, Family::Expected, index + 1);
        let s2 = derive_seed(seed.wrapping_add(1), Family::Expected, index);
        let s3 = derive_seed(seed, Family::Stress, index);
        prop_assert_ne!(s0, s1);
        prop_assert_ne!(s0, s2);
        prop_assert_ne!(s0, s3);
    }

    /// Every generated profile feeds the existing trace generator
    /// without panicking and produces a non-degenerate stream.
    #[test]
    fn profiles_drive_the_trace_generator(
        seed in any::<u64>(),
        family_idx in 0usize..3,
        index in 0u64..256,
    ) {
        let p = generate_profile(seed, Family::ALL[family_idx], index);
        let ops: Vec<_> = TraceGenerator::new(p).take(256).collect();
        prop_assert_eq!(ops.len(), 256);
    }

    /// Population generation is prefix-stable: growing n never
    /// changes the members already drawn.
    #[test]
    fn populations_are_prefix_stable(seed in any::<u64>(), n in 4usize..40) {
        let small = PopulationSpec::all_families(n, seed).generate().expect("valid");
        let large = PopulationSpec::all_families(n + 7, seed).generate().expect("valid");
        prop_assert_eq!(&large[..n], &small[..]);
    }
}
