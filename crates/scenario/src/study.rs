//! The subsetting-at-scale study: the paper's methodology comparison
//! run over generated populations instead of 11 benchmarks.
//!
//! The unit of the study is a **panel**: a contiguous slice of the
//! population treated as one complete configurational campaign —
//! per-workload annealing, the cross-configuration matrix with the
//! replacement rule, then both Figure-3 routes (raw-characteristic
//! subsetting vs configurational clustering) and the §5.3 pitfall
//! experiment for every member. Panelling is what makes N=100s
//! tractable — the methodology comparison is defined *within* a
//! campaign, and a panel is one random-population campaign sample, so
//! the study scales linearly in N instead of quadratically — while
//! still exercising the full pipeline end to end on every panel.
//!
//! Every expensive task (anneal walk, matrix cell) runs through the
//! caller's [`RunContext`], so a fleet dispatcher attached there
//! scatters the work over `xps-serve` workers unchanged; the report
//! depends only on the population and options, never on worker count,
//! `--jobs`, or failure schedule — byte-identical like every other
//! artifact in this repository.

use crate::error::ScenarioError;
use crate::population::PopulationSpec;
use serde::Serialize;
use xps_core::communal::{compare_methodologies, pitfall_experiment, Merit};
use xps_core::explore::{EvalCache, RunContext};
use xps_core::pipeline::Pipeline;
use xps_core::trace;
use xps_core::workload::{Characterizer, TraceGenerator, WorkloadProfile};

/// Width, in percentage points of loss, of one gap-histogram bucket.
pub const GAP_BUCKET_PCT: f64 = 1.0;
/// Number of gap-histogram buckets; the last bucket is open-ended.
pub const GAP_BUCKETS: usize = 11;

/// Tuning of one scale study.
#[derive(Debug, Clone)]
pub struct StudyOptions {
    /// Pipeline options of each panel campaign (annealing budget,
    /// matrix trace length, replacement passes, `--jobs`).
    pub pipeline: Pipeline,
    /// Workloads per panel campaign. The last panel absorbs the
    /// remainder; a remainder too small for the methodology
    /// comparison is merged into the previous panel.
    pub panel: usize,
    /// Cores of the CMP both routes design (the paper's dual-core
    /// study uses 2).
    pub cores: usize,
    /// Trace length for the raw characterization of each workload.
    pub characterize_ops: usize,
    /// Fractional design-quality loss above which a pitfall
    /// experiment counts as a hit.
    pub pitfall_threshold: f64,
    /// Figure of merit both routes optimize.
    pub merit: Merit,
}

impl StudyOptions {
    /// Seconds-scale settings: CI smoke and demos.
    pub fn smoke() -> StudyOptions {
        let mut pipeline = Pipeline::quick();
        pipeline.explore.anneal.iterations = 8;
        pipeline.explore.anneal.eval_ops_early = 3_000;
        pipeline.explore.anneal.eval_ops_late = 6_000;
        pipeline.explore.reanneal_iterations = 3;
        pipeline.matrix_ops = 8_000;
        StudyOptions {
            pipeline,
            panel: 8,
            cores: 2,
            characterize_ops: 8_000,
            pitfall_threshold: 0.01,
            merit: Merit::HarmonicMean,
        }
    }

    /// Minutes-scale settings: the default `repro scale` study.
    pub fn quick() -> StudyOptions {
        StudyOptions {
            pipeline: Pipeline::quick(),
            panel: 8,
            cores: 2,
            characterize_ops: 40_000,
            pitfall_threshold: 0.01,
            merit: Merit::HarmonicMean,
        }
    }

    /// Check the study invariants the panel mathematics rely on.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Spec`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.pipeline.validate().map_err(ScenarioError::Pipeline)?;
        if self.cores == 0 {
            return Err(ScenarioError::Spec("cores must be >= 1".into()));
        }
        if self.panel < 2 * self.cores {
            return Err(ScenarioError::Spec(format!(
                "panel size {} too small: need at least 2*cores = {} so clustering \
                 can keep more representatives than cores",
                self.panel,
                2 * self.cores
            )));
        }
        if self.characterize_ops == 0 {
            return Err(ScenarioError::Spec("characterize_ops must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&self.pitfall_threshold) {
            return Err(ScenarioError::Spec(format!(
                "pitfall_threshold {} outside [0, 1)",
                self.pitfall_threshold
            )));
        }
        Ok(())
    }
}

/// One §5.3 pitfall experiment inside a panel.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PitfallOutcome {
    /// The workload dropped from exploration.
    pub dropped: String,
    /// The dropped workload's scenario family.
    pub family: String,
    /// Fractional design-quality loss the drop caused.
    pub loss: f64,
    /// Whether the loss clears the study's pitfall threshold.
    pub hit: bool,
}

/// One panel campaign's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PanelOutcome {
    /// Panel index within the study.
    pub index: usize,
    /// Member workload names, in campaign order.
    pub workloads: Vec<String>,
    /// Representatives the subset-first route reduced to.
    pub representatives: usize,
    /// Subset-first (route a) core choice.
    pub subset_choice: Vec<String>,
    /// Route (a) merit on the full panel.
    pub subset_value: f64,
    /// Customize-first (route b) core choice.
    pub customize_choice: Vec<String>,
    /// Route (b) merit on the full panel (the optimum).
    pub customize_value: f64,
    /// Fractional quality gap of route (a) vs route (b).
    pub gap: f64,
    /// One pitfall experiment per member.
    pub pitfalls: Vec<PitfallOutcome>,
}

/// Distribution of the clustering-vs-subsetting quality gap.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GapStats {
    /// Number of panel campaigns.
    pub panels: usize,
    /// Mean gap across panels.
    pub mean: f64,
    /// Smallest gap.
    pub min: f64,
    /// Largest gap.
    pub max: f64,
    /// Histogram over [`GAP_BUCKET_PCT`]-wide loss buckets; the last
    /// bucket is open-ended.
    pub histogram: Vec<u64>,
}

/// Per-family pitfall aggregation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FamilyStats {
    /// Family name.
    pub family: String,
    /// Population members of this family.
    pub workloads: usize,
    /// Pitfall experiments that dropped a member of this family.
    pub pitfall_experiments: usize,
    /// How many cleared the threshold.
    pub pitfall_hits: usize,
    /// `hits / experiments` (0 when no experiments ran).
    pub pitfall_rate: f64,
    /// Mean loss over this family's experiments.
    pub mean_pitfall_loss: f64,
}

/// The deterministic study report. Contains only values that are pure
/// functions of `(population spec, study options)` — no worker
/// counts, timings, or recovery counters — so its canonical JSON is
/// byte-identical for any `--jobs`, fleet topology, or failure
/// schedule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StudyReport {
    /// Participating families, in draw order.
    pub families: Vec<String>,
    /// Population size.
    pub n: usize,
    /// Population seed.
    pub seed: u64,
    /// Panel size of the study.
    pub panel: usize,
    /// CMP cores designed per panel.
    pub cores: usize,
    /// Figure-of-merit name.
    pub merit: String,
    /// Loss threshold for counting a pitfall hit.
    pub pitfall_threshold: f64,
    /// Every panel campaign.
    pub panels: Vec<PanelOutcome>,
    /// Gap distribution across panels.
    pub gap: GapStats,
    /// Total pitfall experiments.
    pub pitfall_experiments: usize,
    /// Experiments whose loss cleared the threshold.
    pub pitfall_hits: usize,
    /// `hits / experiments`.
    pub pitfall_rate: f64,
    /// Per-family pitfall aggregation, in family draw order.
    pub per_family: Vec<FamilyStats>,
}

impl StudyReport {
    /// The canonical JSON of the report: derived struct serialization
    /// is field-ordered and every number is a deterministic function
    /// of the inputs, so equal studies canonicalize to equal bytes.
    pub fn canonical(&self) -> String {
        // xps-allow(no-unwrap-in-lib): the report is a plain data struct of finite numbers; serialization cannot fail
        serde_json::to_string(self).expect("study reports serialize to JSON")
    }

    /// A human-readable summary table.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scale study: n={} seed={} families={} panels={} cores={} merit={}\n\n",
            self.n,
            self.seed,
            self.families.join("+"),
            self.panels.len(),
            self.cores,
            self.merit
        ));
        out.push_str("panel  members  reps  (a) subset-first  (b) customize-first  gap\n");
        for p in &self.panels {
            out.push_str(&format!(
                "{:>5}  {:>7}  {:>4}  {:>16.4}  {:>19.4}  {:>5.1}%\n",
                p.index,
                p.workloads.len(),
                p.representatives,
                p.subset_value,
                p.customize_value,
                p.gap * 100.0
            ));
        }
        out.push_str(&format!(
            "\ngap: mean {:.1}%  min {:.1}%  max {:.1}%\n",
            self.gap.mean * 100.0,
            self.gap.min * 100.0,
            self.gap.max * 100.0
        ));
        out.push_str(&format!(
            "pitfalls: {} of {} drops lose > {:.0}% ({:.1}%)\n",
            self.pitfall_hits,
            self.pitfall_experiments,
            self.pitfall_threshold * 100.0,
            self.pitfall_rate * 100.0
        ));
        out.push_str("\nfamily        members  drops  hits  rate    mean loss\n");
        for f in &self.per_family {
            out.push_str(&format!(
                "{:<12}  {:>7}  {:>5}  {:>4}  {:>5.1}%  {:>8.2}%\n",
                f.family,
                f.workloads,
                f.pitfall_experiments,
                f.pitfall_hits,
                f.pitfall_rate * 100.0,
                f.mean_pitfall_loss * 100.0
            ));
        }
        out
    }
}

/// The canonical name of a figure of merit.
fn merit_name(m: Merit) -> &'static str {
    match m {
        Merit::Average => "avg",
        Merit::HarmonicMean => "har",
        Merit::ContentionWeightedHarmonicMean => "cw-har",
    }
}

/// Split `n` workloads into panels of `panel`; a final remainder too
/// small for the methodology comparison (fewer than `2 * cores`
/// members) is merged into the previous panel.
fn panel_bounds(n: usize, panel: usize, cores: usize) -> Vec<std::ops::Range<usize>> {
    let mut bounds = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + panel).min(n);
        bounds.push(start..end);
        start = end;
    }
    if bounds.len() >= 2 {
        // xps-allow(no-unwrap-in-lib): len >= 2 was just checked
        let last = bounds.last().expect("non-empty").clone();
        if last.len() < 2 * cores {
            bounds.pop();
            // xps-allow(no-unwrap-in-lib): len >= 2 means one remains after pop
            let prev = bounds.last_mut().expect("non-empty");
            prev.end = last.end;
        }
    }
    bounds
}

/// The raw (microarchitecture-independent) Kiviat vector of one
/// profile, measured from its own generated trace.
fn raw_characteristics(p: &WorkloadProfile, ops: usize) -> Vec<f64> {
    let mut c = Characterizer::new();
    for op in TraceGenerator::new(p.clone()).take(ops) {
        c.observe(&op);
    }
    c.finish().kiviat().to_vec()
}

/// The family prefix of a generated workload name (`expected-0012` →
/// `expected`).
pub(crate) fn family_prefix(name: &str) -> &str {
    name.rsplit_once('-').map_or(name, |(prefix, _)| prefix)
}

/// Run the subsetting-at-scale study over `spec`'s population.
///
/// Every panel campaign runs through `ctx` — attach a fleet
/// dispatcher there to scatter anneals and matrix cells over workers;
/// the report is byte-identical either way.
///
/// # Errors
///
/// Returns [`ScenarioError`] when the specs are invalid or a panel
/// campaign fails terminally.
pub fn run_study(
    spec: &PopulationSpec,
    opts: &StudyOptions,
    ctx: &RunContext,
) -> Result<StudyReport, ScenarioError> {
    opts.validate()?;
    let population = spec.generate()?;
    let study_span = trace::span("scale.study");
    let cache = EvalCache::new();
    let bounds = panel_bounds(population.len(), opts.panel, opts.cores);

    let mut panels = Vec::with_capacity(bounds.len());
    for (index, range) in bounds.iter().enumerate() {
        let members = &population[range.clone()];
        let panel_span = trace::span("scale.panel");

        let campaign_span = trace::span("scale.campaign");
        let result = opts
            .pipeline
            .run_recoverable_with(members, ctx, &cache, None)?;
        campaign_span.end_with(|| trace::attr("workloads", members.len()));

        let char_span = trace::span("scale.characterize");
        let chars: Vec<Vec<f64>> = members
            .iter()
            .map(|p| raw_characteristics(p, opts.characterize_ops))
            .collect();
        char_span.end_with(|| trace::attr("ops", opts.characterize_ops));

        let representatives = (members.len() / 2).clamp(opts.cores, members.len());
        let compare_span = trace::span("scale.compare");
        let cmp = compare_methodologies(
            &result.matrix,
            &chars,
            representatives,
            opts.cores,
            opts.merit,
        );
        compare_span.end_with(|| trace::attr("gap", cmp.subsetting_loss));

        let pitfall_span = trace::span("scale.pitfall");
        let pitfalls: Vec<PitfallOutcome> = result
            .matrix
            .names()
            .iter()
            .map(|name| {
                let r = pitfall_experiment(&result.matrix, name, opts.cores, opts.merit);
                PitfallOutcome {
                    dropped: name.clone(),
                    family: family_prefix(name).to_string(),
                    loss: r.loss,
                    hit: r.loss > opts.pitfall_threshold,
                }
            })
            .collect();
        pitfall_span.end_with(|| trace::attr("experiments", pitfalls.len()));

        panels.push(PanelOutcome {
            index,
            workloads: members.iter().map(|p| p.name.clone()).collect(),
            representatives,
            subset_choice: cmp.subset_first_choice,
            subset_value: cmp.subset_first_value,
            customize_choice: cmp.customize_first_choice,
            customize_value: cmp.customize_first_value,
            gap: cmp.subsetting_loss,
            pitfalls,
        });
        panel_span.end_with(|| trace::attr("index", index));
    }
    study_span.end_with(|| trace::attr("panels", panels.len()));

    // Aggregate: gap distribution over panels.
    let gaps: Vec<f64> = panels.iter().map(|p| p.gap).collect();
    let mut histogram = vec![0u64; GAP_BUCKETS];
    for &g in &gaps {
        let bucket = ((g * 100.0 / GAP_BUCKET_PCT).floor().max(0.0) as usize).min(GAP_BUCKETS - 1);
        histogram[bucket] += 1;
    }
    let gap = GapStats {
        panels: gaps.len(),
        mean: gaps.iter().sum::<f64>() / gaps.len() as f64,
        min: gaps.iter().copied().fold(f64::INFINITY, f64::min),
        max: gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        histogram,
    };

    // Aggregate: pitfall rate, overall and per family (family order =
    // the spec's draw order — deterministic, never hash order).
    let all_pitfalls: Vec<&PitfallOutcome> =
        panels.iter().flat_map(|p| p.pitfalls.iter()).collect();
    let pitfall_experiments = all_pitfalls.len();
    let pitfall_hits = all_pitfalls.iter().filter(|p| p.hit).count();
    let per_family: Vec<FamilyStats> = spec
        .families
        .iter()
        .map(|f| {
            let members = (0..spec.n).filter(|&i| spec.family_of(i) == *f).count();
            let drops: Vec<&&PitfallOutcome> = all_pitfalls
                .iter()
                .filter(|p| p.family == f.name())
                .collect();
            let hits = drops.iter().filter(|p| p.hit).count();
            FamilyStats {
                family: f.name().to_string(),
                workloads: members,
                pitfall_experiments: drops.len(),
                pitfall_hits: hits,
                pitfall_rate: if drops.is_empty() {
                    0.0
                } else {
                    hits as f64 / drops.len() as f64
                },
                mean_pitfall_loss: if drops.is_empty() {
                    0.0
                } else {
                    drops.iter().map(|p| p.loss).sum::<f64>() / drops.len() as f64
                },
            }
        })
        .collect();

    Ok(StudyReport {
        families: spec.families.iter().map(|f| f.name().to_string()).collect(),
        n: spec.n,
        seed: spec.seed,
        panel: opts.panel,
        cores: opts.cores,
        merit: merit_name(opts.merit).to_string(),
        pitfall_threshold: opts.pitfall_threshold,
        panels,
        gap,
        pitfall_experiments,
        pitfall_hits,
        pitfall_rate: if pitfall_experiments == 0 {
            0.0
        } else {
            pitfall_hits as f64 / pitfall_experiments as f64
        },
        per_family,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_bounds_merge_small_remainders() {
        assert_eq!(panel_bounds(16, 8, 2), vec![0..8, 8..16]);
        // Remainder 3 < 2*cores=4: merged into the previous panel.
        assert_eq!(panel_bounds(19, 8, 2), vec![0..8, 8..19]);
        // Remainder 4 >= 4: stands alone.
        assert_eq!(panel_bounds(20, 8, 2), vec![0..8, 8..16, 16..20]);
        // A population smaller than one panel is one panel.
        assert_eq!(panel_bounds(5, 8, 2), vec![0..5]);
    }

    #[test]
    fn options_validate_rejects_bad_shapes() {
        let mut o = StudyOptions::smoke();
        o.panel = 3;
        assert!(o.validate().is_err(), "panel < 2*cores");
        let mut o = StudyOptions::smoke();
        o.cores = 0;
        assert!(o.validate().is_err());
        let mut o = StudyOptions::smoke();
        o.pitfall_threshold = 1.5;
        assert!(o.validate().is_err());
        assert!(StudyOptions::smoke().validate().is_ok());
        assert!(StudyOptions::quick().validate().is_ok());
    }

    #[test]
    fn family_prefix_strips_index() {
        assert_eq!(family_prefix("expected-0012"), "expected");
        assert_eq!(family_prefix("cw-har-0001"), "cw-har");
        assert_eq!(family_prefix("plain"), "plain");
    }

    #[test]
    fn merit_names_are_parseable_by_communal() {
        use xps_core::communal::merit_by_name;
        for m in Merit::ALL {
            assert_eq!(merit_by_name(merit_name(m)).expect("known"), m);
        }
    }
}
