//! Seeded parametric samplers for population generation.
//!
//! The vendored `rand` stand-in deliberately carries no distribution
//! zoo — the workspace's hot paths only ever draw uniforms — so the
//! two families the scenario generator is parameterized by live here:
//! a finite [`Zipf`] over ranks (skewed discrete choices: strides,
//! branch-pool sizes, trait picks) and a [`LogNormal`] (heavy-tailed
//! positive magnitudes: footprints, dependence distances). Both
//! consume nothing but `rng.gen::<f64>()` draws, so every sample is a
//! pure function of the seed that built the RNG — the crate-wide
//! contract the `seeded-rng-only-in-generators` lint enforces.

use rand::rngs::SmallRng;
use rand::Rng;

/// A finite Zipf(s) distribution over ranks `0..n` (rank 0 most
/// probable), sampled by inverse CDF over a precomputed cumulative
/// table. `n` is small for every use in this crate, so the linear
/// readback scan is cheaper than alias-table setup and — more
/// importantly — trivially deterministic.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u = rng.gen::<f64>();
        // Readback scan: the first rank whose cumulative mass covers u.
        self.cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1)
    }
}

/// A log-normal distribution: `exp(mu + sigma * Z)` with `Z` standard
/// normal via Box–Muller. Two uniform draws per sample, always —
/// no rejection, so the draw count (and therefore the RNG stream
/// consumed by everything sampled after it) is deterministic.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// A log-normal with the given parameters of the underlying
    /// normal.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-finite or `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(mu.is_finite(), "log-normal mu must be finite");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "log-normal sigma must be >= 0"
        );
        LogNormal { mu, sigma }
    }

    /// A log-normal whose *median* is `median` (`mu = ln median`).
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or parameters are non-finite.
    pub fn with_median(median: f64, sigma: f64) -> LogNormal {
        assert!(
            median.is_finite() && median > 0.0,
            "log-normal median must be positive"
        );
        LogNormal::new(median.ln(), sigma)
    }

    /// Draw one positive value.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        // Box–Muller; u1 is clamped away from 0 so ln stays finite.
        let u1 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Draw one value clamped into `[lo, hi]`.
    pub fn sample_clamped(&self, rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

/// Draw a probability-like value in `[lo, hi] ⊆ [0, 1]` uniformly.
///
/// # Panics
///
/// Panics if the interval is not inside `[0, 1]` or empty.
pub fn frac_in(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
        "fraction interval [{lo}, {hi}] must be inside [0, 1]"
    );
    lo + (hi - lo) * rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks_and_seeded() {
        let z = Zipf::new(8, 1.2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[3] && counts[3] > counts[7]);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let sa: Vec<usize> = (0..64).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..64).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb, "same seed, same stream");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_support() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..512 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all ranks reachable");
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let d = LogNormal::with_median(64.0, 0.8);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut samples: Vec<f64> = (0..2001).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&v| v > 0.0 && v.is_finite()));
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[samples.len() / 2];
        assert!(
            (20.0..200.0).contains(&median),
            "sample median {median} far from 64"
        );
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::with_median(100.0, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..16 {
            let v = d.sample(&mut rng);
            assert!((v - 100.0).abs() < 1e-9, "got {v}");
        }
    }

    #[test]
    fn clamped_sample_respects_bounds() {
        let d = LogNormal::with_median(1.0e6, 2.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..256 {
            let v = d.sample_clamped(&mut rng, 10.0, 1000.0);
            assert!((10.0..=1000.0).contains(&v));
        }
    }
}
