//! The equal-budget explorer bake-off: every portfolio strategy, the
//! same evaluation budget, the 11 SPEC profiles plus seeded scenario
//! panels — which search wins where?
//!
//! Each `(workload, explorer)` pair is one fanned-out task: a
//! budgeted [`search`] whose result is a pure function of `(profile,
//! technology, options, explorer name)`. The fan runs through the
//! caller's [`RunContext`], so the same report is produced by one
//! thread, `--jobs 4`, or a fleet of `xps-serve` workers executing
//! `TaskKind::Search` specs — byte-identically, like every other
//! artifact in this repository.
//!
//! The report scores three things per workload: the best-found IPT
//! per explorer (and the strict-win matrix over the portfolio), the
//! evals-to-best convergence curves, and — the multi-objective
//! extension — each explorer's Pareto front over `(IPT, energy per
//! instruction)` scored by hypervolume against a shared per-workload
//! reference point, so front quality is comparable across explorers.

use crate::error::ScenarioError;
use crate::population::PopulationSpec;
use crate::study::family_prefix;
use serde::Serialize;
use xps_core::cacti::Technology;
use xps_core::communal::{hypervolume, ParetoPoint};
use xps_core::explore::{
    explorer_by_name, search, CurvePoint, EvalCache, RunContext, SearchOptions, SearchOutcome,
    TaskSpec, EXPLORER_NAMES,
};
use xps_core::trace;
use xps_core::workload::{spec, WorkloadProfile};

/// The family label of the real SPEC2000 profiles (generated
/// workloads carry their scenario family prefix instead).
pub const SPEC_FAMILY: &str = "spec";

/// Tuning of one bake-off.
#[derive(Debug, Clone)]
pub struct BakeoffOptions {
    /// The per-search budget and trace length — identical for every
    /// explorer and workload, which is the whole point.
    pub search: SearchOptions,
    /// Worker threads of the fan (0 = available parallelism). The
    /// report is byte-identical for every value.
    pub jobs: usize,
    /// SPEC profile names to include.
    pub spec_workloads: Vec<String>,
    /// Seeded scenario panel to include alongside SPEC, if any.
    pub scenario: Option<PopulationSpec>,
}

impl BakeoffOptions {
    /// Seconds-scale settings: tests and golden snapshots.
    pub fn smoke() -> BakeoffOptions {
        BakeoffOptions {
            search: SearchOptions {
                budget: 14,
                eval_ops: 3_000,
                seed: 0x5EED,
            },
            jobs: 0,
            spec_workloads: vec!["gzip".into(), "mcf".into(), "crafty".into()],
            scenario: Some(PopulationSpec::all_families(4, 11)),
        }
    }

    /// Minutes-scale settings: the default `repro bakeoff` study over
    /// all 11 SPEC profiles plus a seeded panel of every scenario
    /// family.
    pub fn quick() -> BakeoffOptions {
        BakeoffOptions {
            search: SearchOptions::quick(),
            jobs: 0,
            spec_workloads: spec::BENCHMARKS.iter().map(|s| s.to_string()).collect(),
            scenario: Some(PopulationSpec::all_families(6, 11)),
        }
    }

    /// Check every invariant the bake-off relies on.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Spec`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.search
            .validate()
            .map_err(|e| ScenarioError::Spec(e.to_string()))?;
        if self.spec_workloads.is_empty() && self.scenario.is_none() {
            return Err(ScenarioError::Spec(
                "bake-off needs at least one workload (SPEC or scenario)".into(),
            ));
        }
        for name in &self.spec_workloads {
            if spec::profile(name).is_none() {
                return Err(ScenarioError::Spec(format!(
                    "unknown SPEC workload {name:?}"
                )));
            }
        }
        if let Some(s) = &self.scenario {
            s.validate()?;
        }
        Ok(())
    }
}

/// One explorer's result on one workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BakeoffEntry {
    /// The explorer's registry name.
    pub explorer: String,
    /// Best IPT found under the budget.
    pub ipt: f64,
    /// Evaluations spent (the budget, unless a walk proved stuck).
    pub evals: u64,
    /// Unrealizable proposals (free).
    pub unrealizable: u64,
    /// Evaluations spent when the final best was first found.
    pub evals_to_best: u64,
    /// The evals-to-best convergence curve.
    pub curve: Vec<CurvePoint>,
    /// The non-dominated (IPT, energy-per-instruction) front.
    pub front: Vec<ParetoPoint>,
    /// Hypervolume of `front` against the workload's shared
    /// reference point.
    pub hypervolume: f64,
}

/// All explorers' results on one workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadBakeoff {
    /// Workload name.
    pub workload: String,
    /// Its family (`spec` or a scenario family).
    pub family: String,
    /// The winning explorer (highest IPT; ties keep portfolio
    /// order).
    pub winner: String,
    /// The winner's IPT.
    pub best_ipt: f64,
    /// The shared hypervolume reference cost: the highest front cost
    /// any explorer measured on this workload (reference IPT is 0).
    pub reference_cost: f64,
    /// One entry per explorer, portfolio order.
    pub entries: Vec<BakeoffEntry>,
}

/// One explorer's aggregate standing across the whole bake-off.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExplorerStanding {
    /// The explorer's registry name.
    pub explorer: String,
    /// Workloads this explorer won.
    pub wins: u64,
    /// Mean evaluations to reach its final best.
    pub mean_evals_to_best: f64,
    /// Mean hypervolume across workloads.
    pub mean_hypervolume: f64,
}

/// Per-family win counts, aligned with the report's `explorers`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FamilyStanding {
    /// Family name.
    pub family: String,
    /// Workloads of this family in the bake-off.
    pub workloads: usize,
    /// Wins per explorer, in portfolio order.
    pub wins: Vec<u64>,
}

/// The deterministic bake-off report. Contains only values that are
/// pure functions of the options — no worker counts, timings, or
/// recovery counters — so its canonical JSON is byte-identical for
/// any `--jobs`, fleet topology, or failure schedule.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BakeoffReport {
    /// Evaluations granted to every explorer on every workload.
    pub budget: u64,
    /// Trace length of every evaluation, ops.
    pub eval_ops: u64,
    /// Search seed.
    pub seed: u64,
    /// Portfolio, in order; all win vectors align with this.
    pub explorers: Vec<String>,
    /// Every workload's bake-off, input order (SPEC first, then the
    /// scenario panel).
    pub workloads: Vec<WorkloadBakeoff>,
    /// `win_matrix[i][j]`: workloads where explorer `i`'s best IPT
    /// strictly beat explorer `j`'s.
    pub win_matrix: Vec<Vec<u64>>,
    /// Aggregate standings, portfolio order.
    pub standings: Vec<ExplorerStanding>,
    /// Per-family win counts: `spec` first when present, then
    /// scenario families in draw order.
    pub families: Vec<FamilyStanding>,
}

impl BakeoffReport {
    /// The canonical JSON of the report: derived struct serialization
    /// is field-ordered and every number is a deterministic function
    /// of the options, so equal bake-offs canonicalize to equal
    /// bytes.
    pub fn canonical(&self) -> String {
        // xps-allow(no-unwrap-in-lib): the report is a plain data struct of finite numbers; serialization cannot fail
        serde_json::to_string(self).expect("bake-off reports serialize to JSON")
    }

    /// A human-readable summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "explorer bake-off: {} workloads x {} explorers, budget {} evals @ {} ops, seed {}\n\n",
            self.workloads.len(),
            self.explorers.len(),
            self.budget,
            self.eval_ops,
            self.seed
        ));
        out.push_str("workload          family       winner     best IPT   runner-up gap\n");
        for w in &self.workloads {
            let mut ipts: Vec<f64> = w.entries.iter().map(|e| e.ipt).collect();
            ipts.sort_by(|a, b| b.total_cmp(a));
            let gap = if ipts.len() > 1 && ipts[1] > 0.0 {
                (ipts[0] / ipts[1] - 1.0) * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<16}  {:<11}  {:<9}  {:>8.4}  {:>12.2}%\n",
                w.workload, w.family, w.winner, w.best_ipt, gap
            ));
        }
        out.push_str("\nwin matrix (row strictly beats column, workload count):\n");
        out.push_str(&format!("{:>10}", ""));
        for e in &self.explorers {
            out.push_str(&format!("  {e:>9}"));
        }
        out.push('\n');
        for (i, e) in self.explorers.iter().enumerate() {
            out.push_str(&format!("{e:>10}"));
            for j in 0..self.explorers.len() {
                if i == j {
                    out.push_str(&format!("  {:>9}", "-"));
                } else {
                    out.push_str(&format!("  {:>9}", self.win_matrix[i][j]));
                }
            }
            out.push('\n');
        }
        out.push_str("\nexplorer    wins  mean evals-to-best  mean hypervolume\n");
        for s in &self.standings {
            out.push_str(&format!(
                "{:<9}  {:>5}  {:>18.1}  {:>16.5}\n",
                s.explorer, s.wins, s.mean_evals_to_best, s.mean_hypervolume
            ));
        }
        out.push_str("\nfamily        n  ");
        for e in &self.explorers {
            out.push_str(&format!("{e:>10}"));
        }
        out.push('\n');
        for f in &self.families {
            out.push_str(&format!("{:<11}  {:>3}", f.family, f.workloads));
            for w in &f.wins {
                out.push_str(&format!("{w:>10}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Run the equal-budget bake-off.
///
/// Every `(workload, explorer)` pair fans out through `ctx` — attach
/// a fleet dispatcher there to scatter searches over workers; attach
/// a journal to make the run resumable after a kill. The report is
/// byte-identical either way.
///
/// # Errors
///
/// Returns [`ScenarioError`] when the options are invalid, a task
/// fails permanently (retries exhausted), or the journal cannot be
/// read or written.
pub fn run_bakeoff(
    opts: &BakeoffOptions,
    ctx: &RunContext,
) -> Result<BakeoffReport, ScenarioError> {
    opts.validate()?;
    let span = trace::span("bakeoff.run");
    let mut profiles: Vec<(WorkloadProfile, String)> = Vec::new();
    for name in &opts.spec_workloads {
        // xps-allow(no-unwrap-in-lib): validate() checked every SPEC name resolves
        let p = spec::profile(name).expect("validated SPEC workload");
        profiles.push((p, SPEC_FAMILY.to_string()));
    }
    if let Some(s) = &opts.scenario {
        for p in s.generate()? {
            let family = family_prefix(&p.name).to_string();
            profiles.push((p, family));
        }
    }
    let tech = Technology::default();
    let cache = EvalCache::new();
    let n = profiles.len() * EXPLORER_NAMES.len();

    // Workload-major fan: item t = (workload t / E, explorer t % E).
    // Each search is a pure function of its spec, so the fan is
    // dispatchable and journal-resumable.
    let fan = ctx
        .run_fan_tasks(
            opts.jobs,
            "bakeoff",
            n,
            |t| {
                let (p, _) = &profiles[t / EXPLORER_NAMES.len()];
                let name = EXPLORER_NAMES[t % EXPLORER_NAMES.len()];
                Some(TaskSpec::search(p, name, &opts.search, &tech))
            },
            |t| {
                let (p, _) = &profiles[t / EXPLORER_NAMES.len()];
                let name = EXPLORER_NAMES[t % EXPLORER_NAMES.len()];
                // xps-allow(no-unwrap-in-lib): the registry contains every EXPLORER_NAMES entry
                let explorer = explorer_by_name(name).expect("portfolio explorer exists");
                // xps-allow(no-unwrap-in-lib): options were validated before the fan; search cannot fail
                search(&*explorer, p, &tech, &opts.search, &cache).expect("validated options")
            },
        )
        .map_err(|e| ScenarioError::Pipeline(e.into()))?;

    let mut items = fan.items.into_iter();
    let mut workloads: Vec<WorkloadBakeoff> = Vec::with_capacity(profiles.len());
    for (p, family) in &profiles {
        let mut outcomes: Vec<SearchOutcome> = Vec::with_capacity(EXPLORER_NAMES.len());
        for name in EXPLORER_NAMES {
            // xps-allow(no-unwrap-in-lib): the fan returns exactly one item per submitted task
            let item = items.next().expect("one item per task");
            match item {
                Ok(o) => outcomes.push(o),
                Err(e) => {
                    return Err(ScenarioError::Task(format!(
                        "bakeoff search {name}/{} failed: {e}",
                        p.name
                    )));
                }
            }
        }
        // The shared reference point: worse than every measured front
        // point of every explorer on this workload, so hypervolumes
        // are comparable across the portfolio.
        let reference_cost = outcomes
            .iter()
            .flat_map(|o| o.front.iter().map(|pt| pt.cost))
            .fold(f64::NEG_INFINITY, f64::max);
        let reference = ParetoPoint {
            ipt: 0.0,
            cost: reference_cost,
        };
        let entries: Vec<BakeoffEntry> = outcomes
            .iter()
            .map(|o| BakeoffEntry {
                explorer: o.explorer.clone(),
                ipt: o.ipt,
                evals: o.evals,
                unrealizable: o.unrealizable,
                // xps-allow(no-unwrap-in-lib): every search measures at least its start, so the curve is non-empty
                evals_to_best: o.curve.last().expect("non-empty curve").evals,
                curve: o.curve.clone(),
                front: o.front.clone(),
                hypervolume: hypervolume(&o.front, &reference),
            })
            .collect();
        // Strict argmax with ties to portfolio order.
        let mut winner = 0usize;
        for (i, e) in entries.iter().enumerate() {
            if e.ipt > entries[winner].ipt {
                winner = i;
            }
        }
        workloads.push(WorkloadBakeoff {
            workload: p.name.clone(),
            family: family.clone(),
            winner: entries[winner].explorer.clone(),
            best_ipt: entries[winner].ipt,
            reference_cost,
            entries,
        });
    }

    let e_count = EXPLORER_NAMES.len();
    let mut win_matrix = vec![vec![0u64; e_count]; e_count];
    for w in &workloads {
        for (i, row) in win_matrix.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j && w.entries[i].ipt > w.entries[j].ipt {
                    *cell += 1;
                }
            }
        }
    }
    let standings: Vec<ExplorerStanding> = EXPLORER_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let wins = workloads.iter().filter(|w| w.winner == *name).count() as u64;
            let mean = |f: &dyn Fn(&BakeoffEntry) -> f64| {
                workloads.iter().map(|w| f(&w.entries[i])).sum::<f64>() / workloads.len() as f64
            };
            ExplorerStanding {
                explorer: name.to_string(),
                wins,
                mean_evals_to_best: mean(&|e| e.evals_to_best as f64),
                mean_hypervolume: mean(&|e| e.hypervolume),
            }
        })
        .collect();

    // Family order: `spec` first when present, then scenario draw
    // order — never hash order.
    let mut family_order: Vec<String> = Vec::new();
    if !opts.spec_workloads.is_empty() {
        family_order.push(SPEC_FAMILY.to_string());
    }
    if let Some(s) = &opts.scenario {
        for f in &s.families {
            if !family_order.iter().any(|x| x == f.name()) {
                family_order.push(f.name().to_string());
            }
        }
    }
    let families: Vec<FamilyStanding> = family_order
        .into_iter()
        .map(|family| {
            let members: Vec<&WorkloadBakeoff> =
                workloads.iter().filter(|w| w.family == family).collect();
            let wins = EXPLORER_NAMES
                .iter()
                .map(|name| members.iter().filter(|w| w.winner == *name).count() as u64)
                .collect();
            FamilyStanding {
                family,
                workloads: members.len(),
                wins,
            }
        })
        .collect();

    span.end_with(|| {
        trace::attrs([
            ("workloads", (workloads.len() as u64).into()),
            ("tasks", (n as u64).into()),
        ])
    });
    Ok(BakeoffReport {
        budget: opts.search.budget,
        eval_ops: opts.search.eval_ops,
        seed: opts.search.seed,
        explorers: EXPLORER_NAMES.iter().map(|s| s.to_string()).collect(),
        workloads,
        win_matrix,
        standings,
        families,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BakeoffOptions {
        let mut o = BakeoffOptions::smoke();
        o.search.budget = 6;
        o.search.eval_ops = 2_000;
        o.spec_workloads = vec!["gzip".into()];
        o.scenario = Some(PopulationSpec::all_families(4, 11));
        o
    }

    #[test]
    fn smoke_report_is_coherent() {
        let r = run_bakeoff(&tiny(), &RunContext::new()).expect("runs");
        assert_eq!(r.explorers, vec!["anneal", "genetic", "surrogate"]);
        assert_eq!(r.workloads.len(), 5, "1 SPEC + 4 scenario members");
        assert_eq!(r.workloads[0].family, SPEC_FAMILY);
        for w in &r.workloads {
            assert_eq!(w.entries.len(), 3);
            assert!(w.best_ipt > 0.0);
            assert!(r.explorers.contains(&w.winner));
            for e in &w.entries {
                assert_eq!(e.evals, 6, "equal budgets");
                assert!(e.hypervolume >= 0.0);
                assert!(e.evals_to_best >= 1 && e.evals_to_best <= e.evals);
            }
        }
        // The win matrix totals are consistent with the standings.
        let total_wins: u64 = r.standings.iter().map(|s| s.wins).sum();
        assert_eq!(total_wins as usize, r.workloads.len());
        let family_total: usize = r.families.iter().map(|f| f.workloads).sum();
        assert_eq!(family_total, r.workloads.len());
    }

    #[test]
    fn jobs_do_not_change_bytes() {
        let mut a = tiny();
        a.jobs = 1;
        let mut b = tiny();
        b.jobs = 4;
        let ra = run_bakeoff(&a, &RunContext::new()).expect("runs");
        let rb = run_bakeoff(&b, &RunContext::new()).expect("runs");
        assert_eq!(ra.canonical(), rb.canonical());
    }

    #[test]
    fn options_validate_rejects_bad_shapes() {
        let mut o = BakeoffOptions::smoke();
        o.search.budget = 0;
        assert!(o.validate().is_err());
        let mut o = BakeoffOptions::smoke();
        o.spec_workloads = vec!["not-a-benchmark".into()];
        assert!(o.validate().is_err());
        let mut o = BakeoffOptions::smoke();
        o.spec_workloads.clear();
        o.scenario = None;
        assert!(o.validate().is_err());
        assert!(BakeoffOptions::smoke().validate().is_ok());
        assert!(BakeoffOptions::quick().validate().is_ok());
    }
}
