//! Seeded synthetic workload populations.

use crate::error::ScenarioError;
use crate::family::{generate_profile, Family};
use xps_core::workload::WorkloadProfile;

/// The complete description of one synthetic population: which
/// families participate, how many workloads to draw, and the single
/// seed everything derives from. Two equal specs generate equal
/// populations, member by member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationSpec {
    /// Participating families, in round-robin draw order.
    pub families: Vec<Family>,
    /// Total number of workloads across all families.
    pub n: usize,
    /// The population seed every per-workload seed derives from.
    pub seed: u64,
}

impl PopulationSpec {
    /// A population drawing from every family.
    pub fn all_families(n: usize, seed: u64) -> PopulationSpec {
        PopulationSpec {
            families: Family::ALL.to_vec(),
            n,
            seed,
        }
    }

    /// Check the spec's invariants: at least one family, no duplicate
    /// families (a duplicate would silently double a family's share),
    /// and enough workloads for the study's panel mathematics.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Spec`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.families.is_empty() {
            return Err(ScenarioError::Spec(
                "population needs at least one family".into(),
            ));
        }
        for (i, f) in self.families.iter().enumerate() {
            if self.families[..i].contains(f) {
                return Err(ScenarioError::Spec(format!(
                    "family `{}` listed twice",
                    f.name()
                )));
            }
        }
        if self.n < 4 {
            return Err(ScenarioError::Spec(format!(
                "population needs at least 4 workloads for the methodology comparison, got {}",
                self.n
            )));
        }
        Ok(())
    }

    /// Generate the population: workload `i` belongs to family
    /// `families[i % families.len()]` and is a pure function of
    /// `(seed, family, i)` — growing `n` extends the population
    /// without perturbing existing members. Every returned profile
    /// satisfies the `workload` domain invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Spec`] when the spec is invalid.
    pub fn generate(&self) -> Result<Vec<WorkloadProfile>, ScenarioError> {
        self.validate()?;
        let _span = xps_core::trace::span("scale.generate");
        Ok((0..self.n)
            .map(|i| {
                let family = self.families[i % self.families.len()];
                generate_profile(self.seed, family, i as u64)
            })
            .collect())
    }

    /// The family of population member `i`.
    pub fn family_of(&self, i: usize) -> Family {
        self.families[i % self.families.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_prefix_stable() {
        let a = PopulationSpec::all_families(12, 5)
            .generate()
            .expect("valid");
        let b = PopulationSpec::all_families(12, 5)
            .generate()
            .expect("valid");
        assert_eq!(a, b);
        // A larger population starts with the same members.
        let c = PopulationSpec::all_families(24, 5)
            .generate()
            .expect("valid");
        assert_eq!(&c[..12], &a[..]);
    }

    #[test]
    fn names_are_unique_and_family_tagged() {
        let spec = PopulationSpec::all_families(30, 99);
        let pop = spec.generate().expect("valid");
        let mut names: Vec<&str> = pop.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30, "names must be unique");
        for (i, p) in pop.iter().enumerate() {
            assert!(p.name.starts_with(spec.family_of(i).name()));
        }
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        let empty = PopulationSpec {
            families: vec![],
            n: 8,
            seed: 1,
        };
        assert!(empty.generate().is_err());
        let dup = PopulationSpec {
            families: vec![Family::Expected, Family::Expected],
            n: 8,
            seed: 1,
        };
        assert!(matches!(dup.generate(), Err(ScenarioError::Spec(m)) if m.contains("twice")));
        let tiny = PopulationSpec::all_families(3, 1);
        assert!(tiny.generate().is_err());
    }
}
