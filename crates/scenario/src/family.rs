//! Scenario families: seeded synthesis of one workload profile.
//!
//! A family is a parameterized region of the microarchitecture-
//! independent characteristic space — instruction mix, ILP
//! (dependence-distance distribution), branch entropy, footprint and
//! reuse behaviour — from which profiles are drawn by Zipf and
//! log-normal samplers:
//!
//! * [`Family::Expected`] — SPEC-like personalities: moderate mixes,
//!   nested working sets around the published SPEC2000 footprints,
//!   mostly predictable control flow.
//! * [`Family::Stress`] — the heavy tails: large footprints, dense
//!   pointer chasing, low branch predictability, long dependence
//!   chains. Still realistic, but every axis pulled toward its
//!   expensive end.
//! * [`Family::Adversarial`] — corner archetypes chosen to break
//!   characterization shortcuts: zero-entropy and maximum-entropy
//!   control flow, single-block footprints, cold-only maximal-reuse-
//!   distance scans, fully serial pointer chases, and *raw twins* —
//!   pairs that look near-identical to raw characterization (same
//!   mix, same footprint) while hiding opposite dependence/memory
//!   structure, the bzip/gzip trap of the paper's §5.3 generalized.
//!
//! Every profile is a pure function of `(population seed, family,
//! index)`: the per-workload RNG is seeded from a SplitMix64 mix of
//! exactly those three values, so populations are reproducible
//! workload-by-workload, and growing `n` never perturbs the profiles
//! already generated.

use crate::dist::{frac_in, LogNormal, Zipf};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use xps_core::workload::{
    ControlBehavior, DependenceBehavior, MemoryBehavior, OpMix, WorkloadProfile,
};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The three scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// SPEC-like personalities.
    Expected,
    /// Heavy-tailed, expensive-end personalities.
    Stress,
    /// Corner archetypes and raw-twin traps.
    Adversarial,
}

impl Family {
    /// All families, in canonical order.
    pub const ALL: [Family; 3] = [Family::Expected, Family::Stress, Family::Adversarial];

    /// The family's canonical name (also the profile-name prefix).
    pub fn name(&self) -> &'static str {
        match self {
            Family::Expected => "expected",
            Family::Stress => "stress",
            Family::Adversarial => "adversarial",
        }
    }

    /// Parse a family name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message listing the known families.
    pub fn parse(name: &str) -> Result<Family, String> {
        match name.trim() {
            "expected" => Ok(Family::Expected),
            "stress" => Ok(Family::Stress),
            "adversarial" => Ok(Family::Adversarial),
            other => Err(format!(
                "unknown scenario family `{other}`; known: expected, stress, adversarial"
            )),
        }
    }

    /// Stable per-family seed-derivation tag.
    fn tag(&self) -> u64 {
        match self {
            Family::Expected => 0x45585045_43544544, // "EXPECTED"
            Family::Stress => 0x53545245_53530000,
            Family::Adversarial => 0x41445645_52530000,
        }
    }
}

/// SplitMix64 finalizer: a bijective avalanche over one 64-bit word.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-workload seed: a SplitMix64 mix of the population seed,
/// the family tag, and the workload index. Explicit and order-free —
/// workload `i` gets the same profile whatever else the population
/// contains.
pub fn derive_seed(population_seed: u64, family: Family, index: u64) -> u64 {
    splitmix(splitmix(population_seed ^ family.tag()).wrapping_add(index))
}

/// Synthesize workload `index` of `family` under `population_seed`.
/// The returned profile always satisfies every `WorkloadProfile`
/// domain invariant (pinned by this crate's proptests).
pub fn generate_profile(population_seed: u64, family: Family, index: u64) -> WorkloadProfile {
    let seed = derive_seed(population_seed, family, index);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = match family {
        Family::Expected => expected(&mut rng),
        Family::Stress => stress(&mut rng),
        Family::Adversarial => adversarial(&mut rng, index),
    };
    p.name = format!("{}-{index:04}", family.name());
    // The trace generator consumes the profile's own seed; derive it
    // from the same stream so the trace varies with the population
    // seed too, not just the parameters.
    p.seed = seed;
    p.weight = 1.0;
    assert!(
        p.validate().is_ok(),
        "generated profile `{}` violates a domain invariant: {:?}",
        p.name,
        p.validate()
    );
    p
}

/// Power-of-two stride drawn Zipf-skewed toward small strides
/// (real codes are mostly unit-stride over 8-byte elements).
fn sample_stride(rng: &mut SmallRng) -> u64 {
    8 << Zipf::new(6, 1.1).sample(rng) // 8..=256 bytes
}

/// Branch-pool size drawn Zipf-skewed toward small pools.
fn sample_static_branches(rng: &mut SmallRng, floor: u32) -> u32 {
    floor << Zipf::new(8, 0.9).sample(rng)
}

/// Nested hot/warm/cold footprints from log-normal region sizes.
fn sample_footprint(
    rng: &mut SmallRng,
    hot_median: f64,
    warm_mult: f64,
    cold_mult: f64,
    sigma: f64,
) -> (u64, u64, u64) {
    let hot =
        LogNormal::with_median(hot_median, sigma).sample_clamped(rng, KB as f64, (8 * MB) as f64)
            as u64;
    let warm = (hot as f64
        * LogNormal::with_median(warm_mult, sigma).sample_clamped(rng, 1.0, 128.0))
        as u64;
    let cold = (warm as f64
        * LogNormal::with_median(cold_mult, sigma).sample_clamped(rng, 1.0, 512.0))
        as u64;
    (
        hot.max(KB),
        warm.max(hot.max(KB)),
        cold.max(warm.max(hot.max(KB))),
    )
}

fn expected(rng: &mut SmallRng) -> WorkloadProfile {
    let load = frac_in(rng, 0.15, 0.32);
    let store = frac_in(rng, 0.05, 0.15);
    let branch = frac_in(rng, 0.08, 0.20);
    let (hot, warm, cold) = sample_footprint(rng, (32 * KB) as f64, 12.0, 24.0, 0.7);
    let hot_frac = frac_in(rng, 0.55, 0.85);
    let warm_frac = frac_in(rng, 0.0, 1.0 - hot_frac).min(0.35);
    let loop_frac = frac_in(rng, 0.2, 0.5);
    let hard_frac = frac_in(rng, 0.0, (1.0 - loop_frac).min(0.25));
    WorkloadProfile {
        name: String::new(),
        seed: 0,
        mix: OpMix {
            load,
            store,
            branch,
            mul: frac_in(rng, 0.0, 0.03),
            div: frac_in(rng, 0.0, 0.004),
        },
        mem: MemoryBehavior {
            hot_bytes: hot,
            warm_bytes: warm,
            cold_bytes: cold,
            hot_frac,
            warm_frac,
            spatial: frac_in(rng, 0.4, 0.85),
            pointer_chase_frac: frac_in(rng, 0.0, 0.08),
            stride: sample_stride(rng),
        },
        ctrl: ControlBehavior {
            static_branches: sample_static_branches(rng, 64),
            loop_frac,
            loop_period: 4 + Zipf::new(64, 0.8).sample(rng) as u32,
            hard_frac,
            bias: frac_in(rng, 0.7, 0.97),
        },
        deps: DependenceBehavior {
            short_frac: frac_in(rng, 0.4, 0.8),
            mean_dist: LogNormal::with_median(8.0, 0.6).sample_clamped(rng, 1.0, 128.0),
            second_src_frac: frac_in(rng, 0.3, 0.6),
        },
        weight: 1.0,
    }
}

fn stress(rng: &mut SmallRng) -> WorkloadProfile {
    let load = frac_in(rng, 0.25, 0.40);
    let store = frac_in(rng, 0.08, 0.22);
    let branch = frac_in(rng, 0.10, 0.28);
    // Fatter region tails than `expected`, biased cold-ward.
    let (hot, warm, cold) = sample_footprint(rng, (128 * KB) as f64, 24.0, 96.0, 1.1);
    let hot_frac = frac_in(rng, 0.2, 0.5);
    let warm_frac = frac_in(rng, 0.1, (1.0 - hot_frac).min(0.45));
    let loop_frac = frac_in(rng, 0.05, 0.3);
    let hard_frac = frac_in(rng, 0.2, (1.0 - loop_frac).min(0.6));
    WorkloadProfile {
        name: String::new(),
        seed: 0,
        mix: OpMix {
            load,
            store,
            branch,
            mul: frac_in(rng, 0.0, 0.05),
            div: frac_in(rng, 0.0, 0.01),
        },
        mem: MemoryBehavior {
            hot_bytes: hot,
            warm_bytes: warm,
            cold_bytes: cold,
            hot_frac,
            warm_frac,
            spatial: frac_in(rng, 0.1, 0.5),
            pointer_chase_frac: frac_in(rng, 0.1, 0.45),
            stride: sample_stride(rng),
        },
        ctrl: ControlBehavior {
            static_branches: sample_static_branches(rng, 512),
            loop_frac,
            loop_period: 2 + Zipf::new(256, 0.5).sample(rng) as u32,
            hard_frac,
            bias: frac_in(rng, 0.5, 0.8),
        },
        deps: DependenceBehavior {
            short_frac: frac_in(rng, 0.6, 0.95),
            mean_dist: LogNormal::with_median(3.0, 0.8).sample_clamped(rng, 1.0, 64.0),
            second_src_frac: frac_in(rng, 0.5, 0.9),
        },
        weight: 1.0,
    }
}

/// The adversarial corner archetypes. The Zipf skew keeps raw twins
/// (the subsetting trap) the most common archetype in any sampled
/// adversarial population.
fn adversarial(rng: &mut SmallRng, index: u64) -> WorkloadProfile {
    match Zipf::new(5, 0.6).sample(rng) {
        0 => raw_twin(rng, index),
        1 => zero_entropy(rng),
        2 => max_entropy(rng),
        3 => max_reuse_distance(rng),
        _ => serial_chase(rng),
    }
}

/// Raw twins: identical raw surface (mix, footprint, branch stats) —
/// the index's parity flips the hidden configurational trait
/// (dependence structure and pointer chasing), so raw clustering
/// sees near-duplicates where customization finds different cores.
fn raw_twin(rng: &mut SmallRng, index: u64) -> WorkloadProfile {
    let mut p = expected(rng);
    p.mem.hot_bytes = 48 * KB;
    p.mem.warm_bytes = 768 * KB;
    p.mem.cold_bytes = 24 * MB;
    p.mem.hot_frac = 0.7;
    p.mem.warm_frac = 0.2;
    p.mem.spatial = 0.6;
    p.mix = OpMix {
        load: 0.27,
        store: 0.09,
        branch: 0.13,
        mul: 0.01,
        div: 0.001,
    };
    if index.is_multiple_of(2) {
        // The ILP-rich twin: long dependence distances, no chasing.
        p.mem.pointer_chase_frac = 0.0;
        p.deps = DependenceBehavior {
            short_frac: 0.2,
            mean_dist: 48.0,
            second_src_frac: 0.3,
        };
    } else {
        // The serialized twin: same raw surface, chained loads and
        // distance-1 dependences.
        p.mem.pointer_chase_frac = 0.35;
        p.deps = DependenceBehavior {
            short_frac: 0.95,
            mean_dist: 1.0,
            second_src_frac: 0.8,
        };
    }
    p
}

/// Zero-entropy control flow and a single-block footprint: every
/// branch resolves the same way, every access hits one hot line.
fn zero_entropy(rng: &mut SmallRng) -> WorkloadProfile {
    let mut p = expected(rng);
    p.ctrl = ControlBehavior {
        static_branches: 1,
        loop_frac: 0.0,
        loop_period: 2,
        hard_frac: 0.0,
        bias: 1.0,
    };
    p.mem.hot_bytes = 64;
    p.mem.warm_bytes = 64;
    p.mem.cold_bytes = 64;
    p.mem.hot_frac = 1.0;
    p.mem.warm_frac = 0.0;
    p.mem.spatial = 1.0;
    p.mem.stride = 8;
    p.mem.pointer_chase_frac = 0.0;
    p
}

/// Maximum-entropy control flow: a huge pool of coin-flip branches.
fn max_entropy(rng: &mut SmallRng) -> WorkloadProfile {
    let mut p = stress(rng);
    p.mix.branch = 0.3;
    p.mix.load = p.mix.load.min(0.3);
    p.ctrl = ControlBehavior {
        static_branches: 16_384,
        loop_frac: 0.0,
        loop_period: 2,
        hard_frac: 1.0,
        bias: 0.5,
    };
    p
}

/// Maximal reuse distance: pure random scans of a huge cold region —
/// no level of the hierarchy can hold the working set.
fn max_reuse_distance(rng: &mut SmallRng) -> WorkloadProfile {
    let mut p = stress(rng);
    p.mem.hot_bytes = 256 * MB;
    p.mem.warm_bytes = 256 * MB;
    p.mem.cold_bytes = 256 * MB;
    p.mem.hot_frac = 0.0;
    p.mem.warm_frac = 0.0;
    p.mem.spatial = 0.0;
    p.mem.pointer_chase_frac = 0.0;
    p
}

/// Fully serial pointer chase: mcf's defining behaviour taken to the
/// limit — every load extends a chain, every dependence is distance 1.
fn serial_chase(rng: &mut SmallRng) -> WorkloadProfile {
    let mut p = stress(rng);
    p.mix.load = 0.4;
    p.mix.store = 0.05;
    p.mem.pointer_chase_frac = 0.9;
    p.mem.spatial = 0.0;
    p.deps = DependenceBehavior {
        short_frac: 1.0,
        mean_dist: 1.0,
        second_src_frac: 0.9,
    };
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_parse_and_name_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Ok(f));
        }
        let e = Family::parse("surprise").expect_err("unknown family");
        assert!(e.contains("expected, stress, adversarial"), "{e}");
    }

    #[test]
    fn profiles_are_pure_functions_of_seed_family_index() {
        for f in Family::ALL {
            let a = generate_profile(42, f, 7);
            let b = generate_profile(42, f, 7);
            assert_eq!(a, b, "same inputs, same profile");
            let c = generate_profile(43, f, 7);
            assert_ne!(a.fingerprint(), c.fingerprint(), "seed must matter");
        }
    }

    #[test]
    fn index_does_not_depend_on_population_shape() {
        // Workload 5's profile is the same whether the population has
        // 6 or 600 members — derivation is per-index, not sequential.
        let a = generate_profile(9, Family::Stress, 5);
        let b = generate_profile(9, Family::Stress, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn every_family_generates_valid_profiles() {
        for f in Family::ALL {
            for i in 0..64 {
                let p = generate_profile(1234, f, i);
                assert!(p.validate().is_ok(), "{}: {:?}", p.name, p.validate());
                assert!(p.name.starts_with(f.name()));
            }
        }
    }

    #[test]
    fn raw_twins_share_surface_but_differ_configurationally() {
        // Force the twin archetype by scanning adversarial indices for
        // an even/odd pair of `-twin` raw surfaces.
        let mut even = None;
        let mut odd = None;
        for i in 0..64 {
            let p = generate_profile(77, Family::Adversarial, i);
            if (p.mem.hot_bytes, p.mem.warm_bytes) == (48 * KB, 768 * KB) {
                if i % 2 == 0 {
                    even.get_or_insert(p);
                } else {
                    odd.get_or_insert(p);
                }
            }
        }
        let (e, o) = (even.expect("an even twin"), odd.expect("an odd twin"));
        assert_eq!(e.mix, o.mix, "raw surface matches");
        assert_eq!(e.mem.hot_bytes, o.mem.hot_bytes);
        assert!(
            e.deps.mean_dist > 10.0 * o.deps.mean_dist,
            "hidden ILP trait differs: {} vs {}",
            e.deps.mean_dist,
            o.deps.mean_dist
        );
        assert!(o.mem.pointer_chase_frac > 0.3 && e.mem.pointer_chase_frac == 0.0);
    }
}
