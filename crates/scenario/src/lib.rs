//! # xps-scenario — synthetic workload populations and the
//! subsetting-at-scale study
//!
//! The paper's headline claim — configurational clustering beats
//! raw-characteristic subsetting for heterogeneous-CMP design — rests
//! on 11 SPEC2000 profiles. This crate tests it at population scale:
//! a fully seeded generator of synthetic workloads over the
//! microarchitecture-independent characteristics (instruction mix,
//! ILP dependence-distance distributions, branch entropy,
//! footprint/reuse behaviour), parameterized by Zipf and log-normal
//! samplers and organized into three [`Family`]s — `expected`
//! (SPEC-like), `stress` (heavy tails), `adversarial` (corner
//! archetypes and bzip/gzip-style raw twins). Every generated
//! [`WorkloadProfile`](xps_core::workload::WorkloadProfile) satisfies
//! the `workload` domain invariants and flows through the existing
//! pipeline unchanged.
//!
//! On top sits the scale study ([`run_study`]): the population is
//! split into panels, each panel runs the complete configurational
//! campaign (per-workload anneal, cross-configuration matrix,
//! replacement rule), and both Figure-3 routes plus the §5.3 pitfall
//! experiment are scored per panel. The emitted [`StudyReport`] — the
//! clustering-vs-subsetting quality-gap distribution and the measured
//! pitfall rate — is a pure function of `(population spec, study
//! options)`: byte-identical for any `--jobs` value, fleet worker
//! count, or failure schedule, like every other artifact in this
//! repository.
//!
//! ## Determinism contract
//!
//! * Profiles are pure functions of `(population seed, family,
//!   index)`; no entropy source exists in this crate (enforced by the
//!   `seeded-rng-only-in-generators` lint).
//! * Growing `n` extends a population without perturbing the members
//!   already generated.
//! * All sampling draws a deterministic number of uniforms per value
//!   (inverse-CDF Zipf, Box–Muller log-normal; no rejection loops).
//!
//! ## Example
//!
//! ```
//! use xps_scenario::{Family, PopulationSpec};
//!
//! let pop = PopulationSpec::all_families(12, 42).generate().expect("valid spec");
//! assert_eq!(pop.len(), 12);
//! assert!(pop.iter().all(|p| p.validate().is_ok()));
//! assert!(pop[0].name.starts_with(Family::Expected.name()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bakeoff;
mod dist;
mod error;
mod family;
mod population;
mod study;

pub use bakeoff::{
    run_bakeoff, BakeoffEntry, BakeoffOptions, BakeoffReport, ExplorerStanding, FamilyStanding,
    WorkloadBakeoff, SPEC_FAMILY,
};
pub use dist::{LogNormal, Zipf};
pub use error::ScenarioError;
pub use family::{derive_seed, generate_profile, Family};
pub use population::PopulationSpec;
pub use study::{
    run_study, FamilyStats, GapStats, PanelOutcome, PitfallOutcome, StudyOptions, StudyReport,
    GAP_BUCKETS, GAP_BUCKET_PCT,
};
