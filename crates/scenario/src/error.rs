//! Typed errors of the scenario subsystem.

use xps_core::PipelineError;

/// Everything that can go wrong generating a population or running
/// the scale study.
#[derive(Debug)]
pub enum ScenarioError {
    /// The population or study specification violates an invariant.
    Spec(String),
    /// The underlying configurational pipeline failed.
    Pipeline(PipelineError),
    /// A fanned-out task failed permanently (every retry exhausted).
    Task(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Spec(m) => write!(f, "invalid scenario spec: {m}"),
            ScenarioError::Pipeline(e) => write!(f, "scale study pipeline failed: {e}"),
            ScenarioError::Task(m) => write!(f, "scenario task failed permanently: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Spec(_) | ScenarioError::Task(_) => None,
            ScenarioError::Pipeline(e) => Some(e),
        }
    }
}

impl From<PipelineError> for ScenarioError {
    fn from(e: PipelineError) -> ScenarioError {
        ScenarioError::Pipeline(e)
    }
}
