//! Property tests of the recorder's structural invariant: *any*
//! interleaving of recorder operations — however unbalanced the
//! instrumented code was — serializes to an event list that
//! reconstructs into a well-nested span tree with a monotonic logical
//! clock, and concatenating the finished buffers of several recorders
//! on one track preserves that property.

use proptest::prelude::*;
use xps_trace::{build_tree, Event, EventKind, SpanNode, SpanRecorder, TraceSink};

/// One scripted recorder operation.
#[derive(Debug, Clone)]
enum Op {
    Begin(usize),
    End,
    Instant(usize),
    Volatile(usize),
}

/// Span / event names must be `&'static str`; draw them from a fixed
/// pool.
const NAMES: [&str; 5] = ["walk", "inner", "move", "cache.lookup", "sim.run"];

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..4, 0..NAMES.len()).prop_map(|(kind, name)| match kind {
        0 => Op::Begin(name),
        1 => Op::End,
        2 => Op::Instant(name),
        _ => Op::Volatile(name),
    })
}

/// A script of up to `max` operations (the vendored proptest's `vec`
/// is fixed-length, so the length is drawn first).
fn script_strategy(max: usize) -> impl Strategy<Value = Vec<Op>> {
    (0usize..max).prop_flat_map(|n| proptest::collection::vec(op_strategy(), n))
}

/// Run a script against a fresh recorder. Stray `End`s (no span open)
/// are exactly what a buggy instrumentation site would produce; the
/// recorder must shrug them off.
fn record(ops: &[Op]) -> Vec<Event> {
    let mut rec = SpanRecorder::new();
    for op in ops {
        match op {
            Op::Begin(n) => rec.begin(NAMES[*n]),
            Op::End => rec.end(xps_trace::Attrs::new()),
            Op::Instant(n) => rec.instant(NAMES[*n], xps_trace::Attrs::new()),
            Op::Volatile(n) => rec.instant_volatile(NAMES[*n], xps_trace::Attrs::new()),
        }
    }
    rec.finish()
}

/// Walk a reconstructed forest checking begin/end tick containment.
fn check_extents(nodes: &[SpanNode]) {
    for node in nodes {
        assert!(node.begin_tick <= node.end_tick, "{node:?}");
        for child in &node.children {
            assert!(
                node.begin_tick <= child.begin_tick && child.end_tick <= node.end_tick,
                "child {child:?} escapes parent {node:?}"
            );
        }
        check_extents(&node.children);
    }
}

proptest! {
    /// Whatever the interleaving, a finished recorder's events are a
    /// well-nested forest.
    #[test]
    fn any_interleaving_reconstructs_a_well_nested_tree(
        ops in script_strategy(64)
    ) {
        let events = record(&ops);
        let tree = build_tree(&events).expect("recorder output must be well nested");
        check_extents(&tree);
    }

    /// Deterministic ticks are strictly increasing (each deterministic
    /// event consumes one tick); volatile events never consume ticks.
    #[test]
    fn deterministic_ticks_count_deterministic_events(
        ops in script_strategy(64)
    ) {
        let events = record(&ops);
        let det: Vec<&Event> = events.iter().filter(|e| !e.volatile).collect();
        for (i, ev) in det.iter().enumerate() {
            prop_assert_eq!(ev.tick, i as u64);
        }
        for ev in events.iter().filter(|e| e.volatile) {
            prop_assert!(matches!(ev.kind, EventKind::Instant));
        }
    }

    /// Concatenating several finished recorders under one sink track —
    /// what retried/phased attachment does — still reconstructs, and
    /// the serialized journal parses back line-for-line with only
    /// deterministic events.
    #[test]
    fn concatenated_recorders_stay_well_formed(
        scripts in (1usize..4)
            .prop_flat_map(|k| proptest::collection::vec(script_strategy(24), k))
    ) {
        let sink = TraceSink::new();
        let mut concatenated: Vec<Event> = Vec::new();
        for ops in &scripts {
            let mut rec = sink.recorder();
            for op in ops {
                match op {
                    Op::Begin(n) => rec.begin(NAMES[*n]),
                    Op::End => rec.end(xps_trace::Attrs::new()),
                    Op::Instant(n) => rec.instant(NAMES[*n], xps_trace::Attrs::new()),
                    Op::Volatile(n) => rec.instant_volatile(NAMES[*n], xps_trace::Attrs::new()),
                }
            }
            // Mirror TraceSink::attach's finish-then-append.
            let mut probe = SpanRecorder::new();
            for op in ops {
                match op {
                    Op::Begin(n) => probe.begin(NAMES[*n]),
                    Op::End => probe.end(xps_trace::Attrs::new()),
                    Op::Instant(n) => probe.instant(NAMES[*n], xps_trace::Attrs::new()),
                    Op::Volatile(n) => probe.instant_volatile(NAMES[*n], xps_trace::Attrs::new()),
                }
            }
            concatenated.extend(probe.finish());
            sink.attach("track", rec);
        }
        // Each finished segment is a complete forest, so the
        // concatenation must still be one (ticks restart per segment,
        // which build_tree only enforces per contiguous run — the
        // forest property is what concatenation must preserve).
        let mut stack = 0i64;
        for ev in &concatenated {
            match ev.kind {
                EventKind::Begin => stack += 1,
                EventKind::End => {
                    stack -= 1;
                    prop_assert!(stack >= 0, "end without begin in concatenation");
                }
                EventKind::Instant => {}
            }
        }
        prop_assert_eq!(stack, 0, "concatenation left spans open");
        // The journal has exactly the deterministic events, in order.
        let journal = sink.to_ndjson();
        let det = concatenated.iter().filter(|e| !e.volatile).count();
        prop_assert_eq!(journal.lines().count(), det);
        for line in journal.lines() {
            prop_assert!(line.starts_with("{\"track\":\"track\",\"tick\":"), "{}", line);
        }
    }
}
