//! Live progress events for embedding the explorer in a service.
//!
//! A batch `repro` run only needs the final summary line, but a
//! long-lived daemon serving exploration jobs wants to stream what the
//! engine is doing *right now* — which anneal step it is on, how hot
//! the walk still is, the best score so far — to clients polling or
//! streaming a job. [`ProgressSink`] is that hook: a cheap, clonable,
//! thread-safe callback that the explorer and its worker pool invoke
//! as work happens.
//!
//! Progress is strictly observational: emitting events never changes a
//! walk, a journal record, or a result byte. Sinks are called from
//! worker threads, so they must be fast and must not block on the
//! threads that produce results.
//!
//! This lives in `xps-trace` — alongside spans and the self-profile —
//! so the whole instrument surface of the stack is one crate; the
//! explore crate re-exports these types unchanged.

use std::fmt;
use std::sync::Arc;

/// One observable step of an exploration run.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// One simulated-annealing iteration finished.
    AnnealStep {
        /// The workload being customized.
        workload: String,
        /// Which multi-start corner this walk began from (0 = the
        /// Table 3 start).
        start: u32,
        /// 1-based iteration just completed.
        iteration: u32,
        /// Total iterations of this walk.
        iterations: u32,
        /// Current acceptance temperature.
        temperature: f64,
        /// Best objective score seen so far in this walk.
        best: f64,
    },
    /// One pool task (an anneal, a cross evaluation, a matrix cell)
    /// finished.
    TaskDone {
        /// The task's journal key, e.g. `matrix#0/17`.
        key: String,
        /// Whether the result was replayed from the journal instead of
        /// executed.
        salvaged: bool,
    },
}

type ProgressFn = dyn Fn(&ProgressEvent) + Send + Sync;

/// A thread-safe progress callback handle.
///
/// Cloning shares the underlying callback; the explorer clones the
/// sink into its worker closures freely.
#[derive(Clone)]
pub struct ProgressSink(Arc<ProgressFn>);

impl ProgressSink {
    /// Wrap a callback.
    pub fn new(f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> ProgressSink {
        ProgressSink(Arc::new(f))
    }

    /// Deliver one event to the callback.
    pub fn emit(&self, event: &ProgressEvent) {
        (self.0)(event);
    }
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressSink(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn sink_delivers_events_to_all_clones() {
        let seen: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = {
            let seen = seen.clone();
            ProgressSink::new(move |e| {
                if let ProgressEvent::TaskDone { key, .. } = e {
                    seen.lock().unwrap().push(key.clone());
                }
            })
        };
        let other = sink.clone();
        sink.emit(&ProgressEvent::TaskDone {
            key: "a#0/0".into(),
            salvaged: false,
        });
        other.emit(&ProgressEvent::TaskDone {
            key: "a#0/1".into(),
            salvaged: true,
        });
        assert_eq!(*seen.lock().unwrap(), vec!["a#0/0", "a#0/1"]);
        assert_eq!(format!("{sink:?}"), "ProgressSink(..)");
    }
}
