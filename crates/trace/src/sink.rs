//! The collection point of a traced run.
//!
//! A [`TraceSink`] owns one event buffer per *track*, keyed by the
//! deterministic task key the worker pool already uses for journaling
//! (`anneal#0/1`, `matrix#0/17`, or `main` for the caller thread).
//! Workers record into private [`SpanRecorder`]s and attach them under
//! their task key when the task succeeds; because keys are
//! deterministic and the map is ordered, the serialized journal is
//! byte-identical no matter how many workers ran or how their
//! schedules interleaved.
//!
//! The sink is also where wall time enters — and only here, at the
//! process edge. [`TraceSink::with_wall_clock`] wires a monotonic
//! nanosecond clock into every recorder the sink hands out; the stamps
//! feed the self-profile but are never serialized, which is how the
//! trace journal stays deterministic while `repro profile` can still
//! print milliseconds.

use crate::event::Event;
use crate::profile::Profile;
use crate::recorder::{SpanRecorder, WallClock};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Shared, thread-safe collector of per-track event buffers.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    tracks: Arc<Mutex<BTreeMap<String, Vec<Event>>>>,
    wall: Option<WallClock>,
}

impl TraceSink {
    /// A sink with no wall clock: fully deterministic, usable anywhere
    /// (tests, library callers).
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// A sink whose recorders stamp events with monotonic wall-clock
    /// nanoseconds for the self-profile. This is the *edge*
    /// constructor: only the CLI and the daemon call it, deterministic
    /// code receives the sink ready-made and cannot observe the clock.
    pub fn with_wall_clock() -> TraceSink {
        // This is the one edge where wall time may enter a trace;
        // stamps feed only the human-facing profile and are never
        // serialized into measured output (`to_ndjson` drops them),
        // so determinism is preserved.
        // xps-allow(determinism-provenance): edge-only wall clock, see above
        let epoch = std::time::Instant::now();
        TraceSink {
            tracks: Arc::default(),
            wall: Some(WallClock::new(move || {
                u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })),
        }
    }

    /// A fresh recorder wired to this sink's clock (if any). The
    /// caller records into it and hands it back via
    /// [`TraceSink::attach`].
    pub fn recorder(&self) -> SpanRecorder {
        match &self.wall {
            Some(clock) => SpanRecorder::with_wall(clock.clone()),
            None => SpanRecorder::new(),
        }
    }

    /// File a finished recorder under its track key. Attaching twice
    /// to one key appends, preserving order of attachment.
    pub fn attach(&self, key: &str, rec: SpanRecorder) {
        let events = rec.finish();
        if events.is_empty() {
            return;
        }
        self.tracks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key.to_string())
            .or_default()
            .extend(events);
    }

    /// Track keys currently filed, in order.
    pub fn track_keys(&self) -> Vec<String> {
        self.tracks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    /// Serialize the deterministic trace journal: one NDJSON line per
    /// non-volatile event, tracks in key order. Byte-identical across
    /// worker counts — volatile events and wall-clock stamps never
    /// appear.
    pub fn to_ndjson(&self) -> String {
        let tracks = self.tracks.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (key, events) in tracks.iter() {
            for ev in events.iter().filter(|e| !e.volatile) {
                ev.write_json(key, &mut out);
                out.push('\n');
            }
        }
        out
    }

    /// Aggregate the whole trace — volatile events included — into a
    /// per-phase profile.
    pub fn profile(&self) -> Profile {
        let tracks = self.tracks.lock().unwrap_or_else(PoisonError::into_inner);
        let mut profile = Profile::default();
        for (key, events) in tracks.iter() {
            profile.absorb_track(key, events);
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attrs;
    use crate::recorder::attr;

    #[test]
    fn journal_is_track_ordered_and_drops_volatile() {
        let sink = TraceSink::new();
        let mut b = sink.recorder();
        b.instant("second", Attrs::new());
        sink.attach("b#0/1", b);
        let mut a = sink.recorder();
        a.begin("first");
        a.instant_volatile("cache.hit", Attrs::new());
        a.end(attr("ops", 3u64));
        sink.attach("a#0/0", a);
        let journal = sink.to_ndjson();
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 3, "{journal}");
        assert!(lines[0].contains("\"track\":\"a#0/0\"") && lines[0].contains("begin"));
        assert!(lines[1].contains("\"ev\":\"end\""));
        assert!(lines[2].contains("\"track\":\"b#0/1\""));
        assert!(!journal.contains("cache.hit"));
        // The profile still sees the volatile event.
        assert_eq!(sink.profile().row("cache.hit").expect("row").count, 1);
    }

    #[test]
    fn wall_clock_stamps_profile_but_not_journal() {
        let sink = TraceSink::with_wall_clock();
        let mut rec = sink.recorder();
        rec.begin("phase");
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.end(Attrs::new());
        sink.attach("main", rec);
        assert!(sink.profile().row("phase").expect("row").wall_ns > 0);
        assert!(!sink.to_ndjson().contains("wall"));
    }

    #[test]
    fn empty_recorders_leave_no_track() {
        let sink = TraceSink::new();
        sink.attach("idle", sink.recorder());
        assert!(sink.track_keys().is_empty());
        assert!(sink.to_ndjson().is_empty());
    }
}
