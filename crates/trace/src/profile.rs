//! Aggregated self-profile and span-tree reconstruction.
//!
//! The profile answers "where did the run spend itself" from a trace's
//! event buffers: per phase name, how many times it ran, how many
//! simulated ops it covered, how many logical ticks it spanned, and —
//! when an edge clock was injected — how much wall time it took. A
//! collapsed-stack rendering (`track;outer;inner count`) feeds
//! standard flamegraph tooling directly.
//!
//! [`build_tree`] reconstructs the well-nested span tree of one track
//! from its flat event list; the profile uses it internally and the
//! property tests use it to prove every recorder interleaving yields a
//! well-formed tree.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One reconstructed span with its children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Phase name of the span.
    pub name: &'static str,
    /// Tick of the `Begin` event.
    pub begin_tick: u64,
    /// Tick of the `End` event.
    pub end_tick: u64,
    /// Child spans, in order.
    pub children: Vec<SpanNode>,
    /// Instants recorded directly under this span, in order.
    pub instants: Vec<Event>,
}

/// Why a flat event list is not a well-nested tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// An `End` event arrived with no span open.
    EndWithoutBegin {
        /// Name on the offending `End`.
        name: &'static str,
    },
    /// An `End` event closed a span other than the innermost open one.
    MismatchedEnd {
        /// Name of the innermost open span.
        open: &'static str,
        /// Name on the offending `End`.
        end: &'static str,
    },
    /// The list ended with spans still open.
    UnclosedSpan {
        /// Name of the innermost span left open.
        name: &'static str,
    },
    /// A deterministic event's tick went backwards.
    NonMonotonicTick {
        /// Tick that broke monotonicity.
        tick: u64,
    },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::EndWithoutBegin { name } => {
                write!(f, "end of `{name}` with no span open")
            }
            TreeError::MismatchedEnd { open, end } => {
                write!(f, "end of `{end}` while `{open}` is innermost")
            }
            TreeError::UnclosedSpan { name } => write!(f, "span `{name}` never ended"),
            TreeError::NonMonotonicTick { tick } => {
                write!(f, "tick {tick} is not monotonic")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// Reconstruct the span forest of one track from its flat event list.
///
/// # Errors
///
/// Returns a [`TreeError`] when the list is not well nested — which a
/// [`SpanRecorder`](crate::SpanRecorder) can never produce, making
/// this the oracle for the recorder's structural invariant.
pub fn build_tree(events: &[Event]) -> Result<Vec<SpanNode>, TreeError> {
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    let mut last_tick: Option<u64> = None;
    for ev in events {
        if !ev.volatile {
            if last_tick.is_some_and(|t| ev.tick < t) {
                return Err(TreeError::NonMonotonicTick { tick: ev.tick });
            }
            last_tick = Some(ev.tick);
        }
        match ev.kind {
            EventKind::Begin => stack.push(SpanNode {
                name: ev.name,
                begin_tick: ev.tick,
                end_tick: ev.tick,
                children: Vec::new(),
                instants: Vec::new(),
            }),
            EventKind::End => {
                let Some(mut node) = stack.pop() else {
                    return Err(TreeError::EndWithoutBegin { name: ev.name });
                };
                if node.name != ev.name {
                    return Err(TreeError::MismatchedEnd {
                        open: node.name,
                        end: ev.name,
                    });
                }
                node.end_tick = ev.tick;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
            EventKind::Instant => match stack.last_mut() {
                Some(parent) => parent.instants.push(ev.clone()),
                None => {
                    // Top-level instants are roots of zero extent.
                    roots.push(SpanNode {
                        name: ev.name,
                        begin_tick: ev.tick,
                        end_tick: ev.tick,
                        children: Vec::new(),
                        instants: vec![ev.clone()],
                    });
                }
            },
        }
    }
    if let Some(node) = stack.pop() {
        return Err(TreeError::UnclosedSpan { name: node.name });
    }
    Ok(roots)
}

/// Aggregate row of one phase (or instant) name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseRow {
    /// Completed spans / recorded instants with this name.
    pub count: u64,
    /// Simulated ops attributed to this name (`ops` attrs).
    pub ops: u64,
    /// Logical ticks spanned (zero for instants).
    pub ticks: u64,
    /// Wall-clock nanoseconds spanned, when an edge clock existed.
    pub wall_ns: u64,
}

/// The aggregated self-profile of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-name aggregates, name-ordered.
    rows: BTreeMap<&'static str, PhaseRow>,
    /// Collapsed-stack ops counts: `track;outer;inner` → ops.
    collapsed: BTreeMap<String, u64>,
}

impl Profile {
    /// Fold one track's events into the profile. `track` is the task
    /// key (`anneal#0/1`); stacks are prefixed with the key's label up
    /// to `#` so parallel fan-outs of the same label collapse
    /// together.
    pub fn absorb_track(&mut self, track: &str, events: &[Event]) {
        let prefix = track.split('#').next().unwrap_or(track);
        let mut stack: Vec<(&'static str, u64, Option<u64>)> = Vec::new();
        let mut path = String::from(prefix);
        for ev in events {
            match ev.kind {
                EventKind::Begin => {
                    stack.push((ev.name, ev.tick, ev.wall_ns));
                    path.push(';');
                    path.push_str(ev.name);
                }
                EventKind::End => {
                    let row = self.rows.entry(ev.name).or_default();
                    row.count += 1;
                    row.ops += ev.ops();
                    if ev.ops() > 0 {
                        *self.collapsed.entry(path.clone()).or_default() += ev.ops();
                    }
                    if let Some((name, begin_tick, begin_wall)) = stack.pop() {
                        if name == ev.name {
                            row.ticks += ev.tick.saturating_sub(begin_tick);
                            if let (Some(b), Some(e)) = (begin_wall, ev.wall_ns) {
                                row.wall_ns += e.saturating_sub(b);
                            }
                        }
                        path.truncate(path.len().saturating_sub(name.len() + 1));
                    }
                }
                EventKind::Instant => {
                    let row = self.rows.entry(ev.name).or_default();
                    row.count += 1;
                    row.ops += ev.ops();
                    if ev.ops() > 0 {
                        let leaf = format!("{path};{}", ev.name);
                        *self.collapsed.entry(leaf).or_default() += ev.ops();
                    }
                }
            }
        }
    }

    /// The row of one phase name, if it ever occurred.
    pub fn row(&self, name: &str) -> Option<PhaseRow> {
        self.rows.get(name).copied()
    }

    /// All rows, name-ordered.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, PhaseRow)> + '_ {
        self.rows.iter().map(|(n, r)| (*n, *r))
    }

    /// Merge another profile into this one (the daemon accumulates
    /// per-job profiles into its process metrics this way).
    pub fn merge(&mut self, other: &Profile) {
        for (name, r) in &other.rows {
            let row = self.rows.entry(name).or_default();
            row.count += r.count;
            row.ops += r.ops;
            row.ticks += r.ticks;
            row.wall_ns += r.wall_ns;
        }
        for (path, ops) in &other.collapsed {
            *self.collapsed.entry(path.clone()).or_default() += ops;
        }
    }

    /// The human-facing per-phase table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>9} {:>14} {:>10} {:>12}",
            "phase", "count", "ops", "ticks", "wall_ms"
        );
        let _ = writeln!(out, "{}", "-".repeat(28 + 1 + 9 + 1 + 14 + 1 + 10 + 1 + 12));
        for (name, r) in &self.rows {
            let wall = if r.wall_ns > 0 {
                format!("{:.3}", r.wall_ns as f64 / 1e6)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<28} {:>9} {:>14} {:>10} {:>12}",
                name, r.count, r.ops, r.ticks, wall
            );
        }
        out
    }

    /// Collapsed-stack lines (`track;outer;inner ops`), sorted, one
    /// per line — the input format of flamegraph tools.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, ops) in &self.collapsed {
            let _ = writeln!(out, "{path} {ops}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Attrs;
    use crate::recorder::{attr, SpanRecorder};

    fn sample_events() -> Vec<Event> {
        let mut rec = SpanRecorder::new();
        rec.begin("walk");
        rec.instant("move", attr("ops", 10u64));
        rec.begin("inner");
        rec.instant_volatile("sim.run", attr("ops", 5u64));
        rec.end(attr("ops", 5u64));
        rec.end(Attrs::new());
        rec.finish()
    }

    #[test]
    fn tree_reconstructs_nesting_and_rejects_malformed() {
        let events = sample_events();
        let tree = build_tree(&events).expect("well nested");
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "walk");
        assert_eq!(tree[0].children.len(), 1);
        assert_eq!(tree[0].children[0].name, "inner");
        assert_eq!(tree[0].instants.len(), 1);
        assert_eq!(tree[0].children[0].instants[0].name, "sim.run");

        // Truncate the final End: unclosed span.
        let cut = &events[..events.len() - 1];
        assert_eq!(
            build_tree(cut),
            Err(TreeError::UnclosedSpan { name: "walk" })
        );

        // An End with nothing open.
        let only_end = vec![events.last().expect("nonempty").clone()];
        assert!(matches!(
            build_tree(&only_end),
            Err(TreeError::EndWithoutBegin { .. })
        ));
    }

    #[test]
    fn profile_aggregates_counts_ops_ticks_and_stacks() {
        let mut p = Profile::default();
        p.absorb_track("anneal#0/1", &sample_events());
        p.absorb_track("anneal#0/2", &sample_events());
        let walk = p.row("walk").expect("walk row");
        assert_eq!(walk.count, 2);
        // walk spans ticks 0..4 (volatile sim.run did not widen it).
        assert_eq!(walk.ticks, 8);
        let mv = p.row("move").expect("move row");
        assert_eq!((mv.count, mv.ops, mv.ticks), (2, 20, 0));
        let sim = p.row("sim.run").expect("volatile still profiled");
        assert_eq!(sim.ops, 10);
        let collapsed = p.collapsed();
        assert!(collapsed.contains("anneal;walk;move 20\n"), "{collapsed}");
        assert!(
            collapsed.contains("anneal;walk;inner;sim.run 10\n"),
            "{collapsed}"
        );
        let table = p.render();
        assert!(table.contains("phase") && table.contains("walk"), "{table}");
    }

    #[test]
    fn merge_sums_rows_and_stacks() {
        let mut a = Profile::default();
        a.absorb_track("x", &sample_events());
        let mut b = Profile::default();
        b.absorb_track("x", &sample_events());
        a.merge(&b);
        assert_eq!(a.row("move").expect("row").ops, 20);
        assert!(a.collapsed().contains("x;walk;move 20\n"));
    }
}
