//! The atoms of a trace: events on a logical clock.
//!
//! Every observable step of the engine is one [`Event`]: a span
//! boundary ([`EventKind::Begin`] / [`EventKind::End`]) or a point
//! occurrence ([`EventKind::Instant`]). Events carry a *logical* tick
//! — a per-track monotonic counter — rather than a wall-clock reading,
//! so the serialized trace of a deterministic computation is itself
//! deterministic: byte-identical across worker counts, machines, and
//! reruns.
//!
//! Two refinements keep that promise honest:
//!
//! * **Volatile events** record steps whose *occurrence* depends on
//!   scheduling (a shared-cache hit observed by one of two racing
//!   workers, the simulator run behind a cache miss). They are kept
//!   for profiling but are excluded from the serialized journal and do
//!   not advance the logical clock, so their presence or absence
//!   cannot perturb the ticks of deterministic events around them.
//! * **Wall-clock stamps** (`wall_ns`) exist only when a recorder was
//!   built from a sink with an edge-injected clock (the CLI / daemon
//!   boundary). They feed the human-facing profile and are never
//!   serialized into the trace journal.

use std::fmt;

/// An attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string, e.g. a workload name.
    Str(String),
    /// An unsigned counter, e.g. simulated ops.
    U64(u64),
    /// A floating-point measurement, e.g. a temperature.
    F64(f64),
    /// A flag, e.g. whether a move was accepted.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl Default for AttrValue {
    fn default() -> AttrValue {
        AttrValue::Bool(false)
    }
}

/// Attribute lists up to this length are stored inline; longer ones
/// spill to the heap.
const ATTRS_INLINE: usize = 4;

/// A list of named attributes.
///
/// Event constructors take closures producing one so the work only
/// happens when a recorder is actually installed — and since every
/// attribute list in the workspace is at most [`ATTRS_INLINE`] entries,
/// building one is allocation-free: the entries live inline in the
/// event. This matters on hot exits like the simulator's `sim.run`
/// instant, recorded once per evaluation during traced campaigns.
///
/// The iteration order (and therefore the serialized journal) is the
/// recording order, exactly as with the former `Vec` representation.
#[derive(Debug, Clone, Default)]
pub struct Attrs {
    len: u8,
    inline: [(&'static str, AttrValue); ATTRS_INLINE],
    spill: Vec<(&'static str, AttrValue)>,
}

impl Attrs {
    /// An empty attribute list. Does not allocate.
    #[must_use]
    pub fn new() -> Attrs {
        Attrs::default()
    }

    /// Append one attribute, spilling to the heap past the inline
    /// capacity.
    pub fn push(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        let slot = usize::from(self.len);
        if slot < ATTRS_INLINE {
            self.inline[slot] = (key, value.into());
            self.len += 1;
        } else {
            self.spill.push((key, value.into()));
        }
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len) + self.spill.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the attributes in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &(&'static str, AttrValue)> {
        self.inline[..usize::from(self.len)]
            .iter()
            .chain(self.spill.iter())
    }
}

impl PartialEq for Attrs {
    fn eq(&self, other: &Attrs) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<const N: usize> From<[(&'static str, AttrValue); N]> for Attrs {
    fn from(items: [(&'static str, AttrValue); N]) -> Attrs {
        items.into_iter().collect()
    }
}

impl FromIterator<(&'static str, AttrValue)> for Attrs {
    fn from_iter<I: IntoIterator<Item = (&'static str, AttrValue)>>(iter: I) -> Attrs {
        let mut attrs = Attrs::new();
        for (k, v) in iter {
            attrs.push(k, v);
        }
        attrs
    }
}

impl<'a> IntoIterator for &'a Attrs {
    type Item = &'a (&'static str, AttrValue);
    type IntoIter = std::iter::Chain<
        std::slice::Iter<'a, (&'static str, AttrValue)>,
        std::slice::Iter<'a, (&'static str, AttrValue)>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline[..usize::from(self.len)]
            .iter()
            .chain(self.spill.iter())
    }
}

/// What kind of step an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point occurrence with no duration.
    Instant,
}

impl EventKind {
    /// The journal spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// One step of a trace, on its track's logical clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical tick within the track. Deterministic events advance the
    /// clock; volatile events borrow the current tick without moving
    /// it.
    pub tick: u64,
    /// Span boundary or instant.
    pub kind: EventKind,
    /// Phase / event name, e.g. `anneal.walk` or `cache.lookup`.
    pub name: &'static str,
    /// Attributes, in recording order.
    pub attrs: Attrs,
    /// Whether the event's occurrence is scheduling-dependent and must
    /// stay out of the deterministic journal.
    pub volatile: bool,
    /// Wall-clock nanoseconds since the edge clock's epoch; present
    /// only on recorders wired to an edge-injected clock, and never
    /// serialized.
    pub wall_ns: Option<u64>,
}

impl Event {
    /// The summed value of every `ops` attribute on this event.
    pub fn ops(&self) -> u64 {
        self.attrs
            .iter()
            .filter(|(k, _)| *k == "ops")
            .map(|(_, v)| match v {
                AttrValue::U64(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// Append this event as one NDJSON journal line (no trailing
    /// newline). Volatile events and wall-clock stamps are the
    /// caller's concern; this renders exactly the deterministic
    /// fields.
    pub fn write_json(&self, track: &str, out: &mut String) {
        out.push_str("{\"track\":\"");
        escape_json(track, out);
        out.push_str("\",\"tick\":");
        let _ = fmt::Write::write_fmt(out, format_args!("{}", self.tick));
        out.push_str(",\"ev\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":\"");
        escape_json(self.name, out);
        out.push('"');
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (key, value)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(key, out);
                out.push_str("\":");
                value.write_json(out);
            }
            out.push('}');
        }
        out.push('}');
    }
}

impl AttrValue {
    /// Append the JSON rendering of this value.
    pub fn write_json(&self, out: &mut String) {
        match self {
            AttrValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
            AttrValue::U64(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            AttrValue::F64(x) if x.is_finite() => {
                let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
            }
            AttrValue::F64(_) => out.push_str("null"),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// JSON string escaping (control characters, quote, backslash).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compact_deterministic_json() {
        let ev = Event {
            tick: 3,
            kind: EventKind::Instant,
            name: "cache.lookup",
            attrs: Attrs::from([("workload", "gzip".into()), ("ops", 40_000u64.into())]),
            volatile: false,
            wall_ns: Some(99), // never serialized
        };
        let mut out = String::new();
        ev.write_json("anneal#0/1", &mut out);
        assert_eq!(
            out,
            "{\"track\":\"anneal#0/1\",\"tick\":3,\"ev\":\"instant\",\
             \"name\":\"cache.lookup\",\"attrs\":{\"workload\":\"gzip\",\"ops\":40000}}"
        );
    }

    #[test]
    fn attr_values_escape_and_format() {
        let mut out = String::new();
        AttrValue::from("a\"b\\c\nd").write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        out.clear();
        AttrValue::from(0.25f64).write_json(&mut out);
        assert_eq!(out, "0.25");
        out.clear();
        AttrValue::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
        out.clear();
        AttrValue::from(true).write_json(&mut out);
        assert_eq!(out, "true");
    }

    #[test]
    fn ops_sums_only_u64_ops_attrs() {
        let ev = Event {
            tick: 0,
            kind: EventKind::End,
            name: "x",
            attrs: Attrs::from([
                ("ops", 3u64.into()),
                ("ops", 4u64.into()),
                ("ops", AttrValue::F64(9.0)),
                ("other", 5u64.into()),
            ]),
            volatile: false,
            wall_ns: None,
        };
        assert_eq!(ev.ops(), 7);
    }

    #[test]
    fn attrs_spill_past_inline_capacity() {
        let mut a = Attrs::new();
        for i in 0..(ATTRS_INLINE as u64 + 3) {
            a.push("k", i);
        }
        assert_eq!(a.len(), ATTRS_INLINE + 3);
        assert!(!a.is_empty());
        let values: Vec<u64> = a
            .iter()
            .map(|(_, v)| match v {
                AttrValue::U64(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, (0..ATTRS_INLINE as u64 + 3).collect::<Vec<_>>());
        // Equality is by content, independent of inline/spill split.
        let b: Attrs = (0..ATTRS_INLINE as u64 + 3)
            .map(|i| ("k", i.into()))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, Attrs::new());
    }
}
