//! `xps-trace` — the instrument surface of the exploration stack.
//!
//! One dependency-free crate carries every way the engine observes
//! itself:
//!
//! * **Spans and instants** ([`span`], [`instant`],
//!   [`instant_volatile`]) on a per-track *logical* clock, recorded
//!   through a thread-local [`SpanRecorder`] so instrumented code
//!   needs no signature changes and costs nothing when tracing is off.
//! * **A deterministic trace journal** ([`TraceSink::to_ndjson`]):
//!   tracks keyed by the worker pool's deterministic task keys,
//!   serialized in key order, volatile (scheduling-dependent) events
//!   excluded — byte-identical across `--jobs N`.
//! * **A self-profile** ([`Profile`]): per-phase count / ops / ticks /
//!   wall-time table plus collapsed-stack output for flamegraph
//!   tooling.
//! * **Progress streaming** ([`ProgressSink`]): the daemon-facing
//!   live event callback, relocated here so tracing and progress are
//!   one surface.
//!
//! The logical-clock rule: deterministic code never reads wall time.
//! A wall clock exists only when the process edge (CLI / daemon)
//! constructs the sink via [`TraceSink::with_wall_clock`]; its stamps
//! decorate the profile and never reach serialized output.

pub mod event;
pub mod profile;
pub mod progress;
pub mod recorder;
pub mod sink;

pub use event::{AttrValue, Attrs, Event, EventKind};
pub use profile::{build_tree, PhaseRow, Profile, SpanNode, TreeError};
pub use progress::{ProgressEvent, ProgressSink};
pub use recorder::{
    attr, attrs, instant, instant_volatile, recording, span, with_recorder, Span, SpanRecorder,
    WallClock,
};
pub use sink::TraceSink;
