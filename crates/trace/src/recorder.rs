//! Per-task span recorders and the thread-local recording surface.
//!
//! A [`SpanRecorder`] buffers the events of one *track* — one pool
//! task, or the caller thread's root track — with its own logical
//! clock starting at zero. Because the clock is per-track and every
//! deterministic event a task records depends only on the task's own
//! computation, a track's event list is identical no matter which
//! worker thread ran it or how many workers existed; the sink merges
//! tracks by their deterministic task key, which is what makes the
//! whole journal bit-identical across `--jobs N`.
//!
//! Instrumented code never threads a recorder through its signatures.
//! It calls the free functions ([`span`], [`instant`],
//! [`instant_volatile`]), which record into whichever recorder is
//! installed on the current thread — and are no-ops when none is.
//! [`with_recorder`] installs one for the duration of a closure,
//! nesting correctly (the worker pool's serial fast path runs tasks on
//! the caller thread, inside the caller's own recording scope) and
//! restoring the previous recorder even on panic, so a task that
//! unwinds into the pool's `catch_unwind` boundary cannot corrupt the
//! caller's track.

use crate::event::{AttrValue, Attrs, Event, EventKind};
use std::cell::RefCell;
use std::sync::Arc;

/// A nanosecond clock injected at the process edge (CLI / daemon).
///
/// Deterministic code never constructs one; see
/// [`TraceSink::with_wall_clock`](crate::TraceSink::with_wall_clock).
#[derive(Clone)]
pub struct WallClock(Arc<dyn Fn() -> u64 + Send + Sync>);

impl WallClock {
    /// Wrap a nanosecond-reading closure.
    pub fn new(f: impl Fn() -> u64 + Send + Sync + 'static) -> WallClock {
        WallClock(Arc::new(f))
    }

    /// Read the clock.
    pub fn now_ns(&self) -> u64 {
        (self.0)()
    }
}

impl std::fmt::Debug for WallClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WallClock(..)")
    }
}

/// The event buffer of one track.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    events: Vec<Event>,
    clock: u64,
    open: Vec<&'static str>,
    wall: Option<WallClock>,
}

impl SpanRecorder {
    /// A recorder with no wall clock: every event is purely logical.
    pub fn new() -> SpanRecorder {
        SpanRecorder::default()
    }

    /// A recorder that additionally stamps events with wall-clock
    /// nanoseconds for the self-profile. The stamps never reach the
    /// serialized journal.
    pub fn with_wall(clock: WallClock) -> SpanRecorder {
        SpanRecorder {
            wall: Some(clock),
            ..SpanRecorder::default()
        }
    }

    fn stamp(&self) -> Option<u64> {
        self.wall.as_ref().map(WallClock::now_ns)
    }

    /// Open a span. Pair with [`SpanRecorder::end`].
    pub fn begin(&mut self, name: &'static str) {
        let ev = Event {
            tick: self.clock,
            kind: EventKind::Begin,
            name,
            attrs: Attrs::new(),
            volatile: false,
            wall_ns: self.stamp(),
        };
        self.clock += 1;
        self.open.push(name);
        self.events.push(ev);
    }

    /// Close the innermost open span, attaching closing attributes.
    /// Ignored when no span is open (a guard outliving its recorder).
    pub fn end(&mut self, attrs: Attrs) {
        let Some(name) = self.open.pop() else {
            return;
        };
        let ev = Event {
            tick: self.clock,
            kind: EventKind::End,
            name,
            attrs,
            volatile: false,
            wall_ns: self.stamp(),
        };
        self.clock += 1;
        self.events.push(ev);
    }

    /// Record a deterministic point event; advances the logical clock.
    pub fn instant(&mut self, name: &'static str, attrs: Attrs) {
        let ev = Event {
            tick: self.clock,
            kind: EventKind::Instant,
            name,
            attrs,
            volatile: false,
            wall_ns: self.stamp(),
        };
        self.clock += 1;
        self.events.push(ev);
    }

    /// Record a scheduling-dependent point event (a shared-cache hit,
    /// a simulator run behind a racing miss). Kept for the profile,
    /// excluded from the journal, and — crucially — does *not* advance
    /// the logical clock, so its occurrence cannot shift the ticks of
    /// deterministic neighbours.
    pub fn instant_volatile(&mut self, name: &'static str, attrs: Attrs) {
        self.events.push(Event {
            tick: self.clock,
            kind: EventKind::Instant,
            name,
            attrs,
            volatile: true,
            wall_ns: self.stamp(),
        });
    }

    /// How many spans are currently open.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Close any spans still open and return the event buffer.
    pub fn finish(mut self) -> Vec<Event> {
        while !self.open.is_empty() {
            self.end(Attrs::new());
        }
        self.events
    }
}

thread_local! {
    static CURRENT: RefCell<Option<SpanRecorder>> = const { RefCell::new(None) };
}

/// Restores the previously installed recorder when dropped, unless
/// the normal path already did; this is what keeps a panicking task
/// from leaving its recorder installed on the caller thread.
struct Restore {
    prev: Option<SpanRecorder>,
    done: bool,
}

impl Drop for Restore {
    fn drop(&mut self) {
        if !self.done {
            let prev = self.prev.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Install `rec` as the current thread's recorder for the duration of
/// `f`, then hand it back along with `f`'s result. Nests: the
/// recorder previously installed (if any) is saved and restored, even
/// if `f` panics.
pub fn with_recorder<R>(rec: SpanRecorder, f: impl FnOnce() -> R) -> (SpanRecorder, R) {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(rec));
    let mut restore = Restore { prev, done: false };
    let out = f();
    let rec = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), restore.prev.take()));
    restore.done = true;
    // `rec` is always `Some`: nested `with_recorder` calls restore our
    // recorder on their way out, and nothing else takes it.
    (rec.unwrap_or_default(), out)
}

/// Whether a recorder is installed on this thread (instrumentation is
/// live).
pub fn recording() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn with_current(f: impl FnOnce(&mut SpanRecorder)) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// An RAII span on the current thread's recorder: opened at
/// construction, closed (with no attributes) on drop, or closed with
/// attributes via [`Span::end_with`].
#[must_use = "a span closes when dropped; bind it to a variable for the intended extent"]
#[derive(Debug)]
pub struct Span {
    done: bool,
}

impl Span {
    /// Close the span now, attaching closing attributes.
    pub fn end_with(mut self, attrs: impl FnOnce() -> Attrs) {
        self.done = true;
        with_current(|rec| rec.end(attrs()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            with_current(|rec| rec.end(Attrs::new()));
        }
    }
}

/// Open a span named `name` on the current thread's recorder. A no-op
/// guard when no recorder is installed.
pub fn span(name: &'static str) -> Span {
    with_current(|rec| rec.begin(name));
    Span { done: false }
}

/// Record a deterministic instant. The attribute closure only runs
/// when a recorder is installed.
pub fn instant(name: &'static str, attrs: impl FnOnce() -> Attrs) {
    with_current(|rec| rec.instant(name, attrs()));
}

/// Record a volatile (scheduling-dependent) instant; see
/// [`SpanRecorder::instant_volatile`].
pub fn instant_volatile(name: &'static str, attrs: impl FnOnce() -> Attrs) {
    with_current(|rec| rec.instant_volatile(name, attrs()));
}

/// Convenience: an attribute list with a single entry. Does not
/// allocate.
pub fn attr(key: &'static str, value: impl Into<AttrValue>) -> Attrs {
    let mut attrs = Attrs::new();
    attrs.push(key, value);
    attrs
}

/// Convenience: an attribute list from a fixed-size array. Does not
/// allocate for up to four entries — the right constructor on hot
/// paths.
pub fn attrs<const N: usize>(items: [(&'static str, AttrValue); N]) -> Attrs {
    Attrs::from(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_noops_without_a_recorder() {
        assert!(!recording());
        let g = span("orphan");
        instant("i", || attr("k", 1u64));
        drop(g);
        // Nothing to observe — the test passes by not panicking.
    }

    #[test]
    fn spans_nest_and_volatile_events_do_not_advance_the_clock() {
        let (rec, ()) = with_recorder(SpanRecorder::new(), || {
            let outer = span("outer");
            instant_volatile("cache.hit", Attrs::new);
            let inner = span("inner");
            instant("move", || attr("ops", 7u64));
            inner.end_with(|| attr("accepted", true));
            outer.end_with(Attrs::new);
        });
        let events = rec.finish();
        let ticks: Vec<(u64, bool)> = events.iter().map(|e| (e.tick, e.volatile)).collect();
        assert_eq!(
            ticks,
            vec![
                (0, false), // begin outer
                (1, true),  // volatile borrows tick 1, does not consume it
                (1, false), // begin inner
                (2, false), // move
                (3, false), // end inner
                (4, false), // end outer
            ]
        );
        assert_eq!(events[4].attrs, attr("accepted", true));
    }

    #[test]
    fn with_recorder_nests_and_restores_on_panic() {
        let (outer_rec, ()) = with_recorder(SpanRecorder::new(), || {
            instant("before", Attrs::new);
            let task = SpanRecorder::new();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_recorder(task, || {
                    let _g = span("doomed");
                    panic!("boom");
                })
            }));
            assert!(result.is_err());
            // The outer recorder is current again after the unwind.
            instant("after", Attrs::new);
        });
        let names: Vec<&str> = outer_rec.finish().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["before", "after"]);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let mut rec = SpanRecorder::new();
        rec.begin("a");
        rec.begin("b");
        let events = rec.finish();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2].name, "b");
        assert_eq!(events[3].name, "a");
        assert!(matches!(events[3].kind, EventKind::End));
    }
}
