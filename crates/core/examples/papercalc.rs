//! Recompute every analysis result from the paper's published Table 5
//! and print it — the source of the expected values asserted in
//! `tests/paper_reproduction.rs`.
//!
//! ```text
//! cargo run --release -p xps-core --example papercalc
//! ```

use xps_core::communal::*;
use xps_core::paper;

fn main() {
    let m = paper::table5_matrix();
    for merit in [
        Merit::Average,
        Merit::HarmonicMean,
        Merit::ContentionWeightedHarmonicMean,
    ] {
        for k in 1..=4 {
            let r = best_combination(&m, k, merit);
            println!(
                "{} k={k}: {:?} avg {:.4} har {:.4} (merit {:.4})",
                merit.label(),
                r.names,
                r.avg_ipt,
                r.har_ipt,
                r.merit_value
            );
        }
    }
    let (avg, har) = ideal_performance(&m);
    println!("ideal: avg {avg:.4} har {har:.4}");
    for (mode, name) in [
        (Propagation::None, "none"),
        (Propagation::Forward, "fwd(target2)"),
        (Propagation::ForwardBackward, "full"),
    ] {
        let target = if name == "fwd(target2)" { 2 } else { 1 };
        let s = assign_surrogates(&m, mode, target);
        let finals: Vec<_> = s
            .final_architectures
            .iter()
            .map(|&i| m.names()[i].clone())
            .collect();
        println!(
            "{name}: finals {:?} har {:.4} avg-slow {:.4} edges {} feedback {:?}",
            finals,
            s.harmonic_ipt(&m),
            s.average_slowdown(&m),
            s.edges.len(),
            s.feedback_pairs
                .iter()
                .map(|&(a, b)| (m.names()[a].clone(), m.names()[b].clone()))
                .collect::<Vec<_>>()
        );
        for e in &s.edges {
            print!(
                "  {}:{}<-{} ({:.1}%)",
                e.order,
                m.names()[e.dependent],
                m.names()[e.host],
                e.slowdown * 100.0
            );
        }
        println!();
        if name == "none" {
            // fig 6 extension: add mcf's own arch
            let mut set = s.final_architectures.clone();
            if !set.contains(&m.index_of("mcf").unwrap()) {
                set.push(m.index_of("mcf").unwrap());
            }
            // recompute fixed assignment with mcf on own
            let mut assign = s.assignment.clone();
            assign[m.index_of("mcf").unwrap()] = m.index_of("mcf").unwrap();
            let wsum: f64 = 11.0;
            let har: f64 = wsum
                / assign
                    .iter()
                    .enumerate()
                    .map(|(w, &c)| 1.0 / m.ipt(w, c))
                    .sum::<f64>();
            let slow: f64 = assign
                .iter()
                .enumerate()
                .map(|(w, &c)| m.slowdown(w, c))
                .sum::<f64>()
                / 11.0;
            println!("  +mcf: har {har:.4} avg-slow {slow:.4}");
        }
    }
    // 5.3 pitfall, dropping gzip (bzip represents gzip)
    for dropped in ["gzip", "bzip"] {
        let r = pitfall_experiment(&m, dropped, 2, Merit::HarmonicMean);
        println!(
            "pitfall drop {dropped}: full {:?} ({:.4}) reduced {:?} on-full {:.4} loss {:.4}",
            r.full_choice, r.full_value, r.reduced_choice, r.reduced_value_on_full, r.loss
        );
    }
    // bzip<->gzip mutual slowdowns
    let (b, g) = (m.index_of("bzip").unwrap(), m.index_of("gzip").unwrap());
    println!(
        "bzip on gzip: {:.3}; gzip on bzip: {:.3}",
        m.slowdown(b, g),
        m.slowdown(g, b)
    );
}
