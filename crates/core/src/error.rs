//! Typed errors of the end-to-end pipeline.

use std::fmt;
use xps_explore::{ExploreError, JournalError};

/// Everything that can abort a measured pipeline run.
///
/// Per-task failures (a panicking anneal, a failing matrix cell) do
/// not abort — they are retried, then degraded around and reported in
/// [`PipelineStats::recovery`](crate::pipeline::PipelineStats); these
/// variants are the conditions with no sensible degradation.
#[derive(Debug)]
pub enum PipelineError {
    /// The pipeline options violate an invariant (caught up front).
    InvalidPipeline(String),
    /// The exploration phase failed terminally.
    Explore(ExploreError),
    /// The measured cross-configuration matrix could not be built
    /// (non-finite or non-positive cells).
    InvalidMatrix(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidPipeline(msg) => write!(f, "invalid pipeline options: {msg}"),
            PipelineError::Explore(e) => write!(f, "{e}"),
            PipelineError::InvalidMatrix(msg) => write!(f, "invalid measured matrix: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Explore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExploreError> for PipelineError {
    fn from(e: ExploreError) -> PipelineError {
        PipelineError::Explore(e)
    }
}

impl From<JournalError> for PipelineError {
    fn from(e: JournalError) -> PipelineError {
        PipelineError::Explore(ExploreError::Journal(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = PipelineError::from(ExploreError::EmptyWorkloads);
        assert!(e.to_string().contains("at least one workload"));
        assert!(std::error::Error::source(&e).is_some());
        let e = PipelineError::InvalidPipeline("matrix_ops must be >= 1".into());
        assert!(e.to_string().contains("matrix_ops"));
    }
}
