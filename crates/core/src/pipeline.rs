//! The end-to-end measured reproduction pipeline.
//!
//! `workload models → annealing exploration → cross-configuration
//! matrix → communal customization`, i.e. the paper's methodology run
//! on this repository's own substrate instead of the published data.

use crate::error::PipelineError;
use serde::{Deserialize, Serialize};
use xps_communal::CrossPerfMatrix;
use xps_explore::{
    merge_counts, resolve_jobs, CacheCounters, Campaign, CustomizedCore, EvalCache, ExploreOptions,
    ProgressSink, RecoveryStats, RunContext,
};
use xps_sim::CoreConfig;
use xps_workload::WorkloadProfile;

/// The IPT substituted for a matrix cell whose measurement failed
/// every retry. Positive (so the matrix stays valid) but smaller than
/// any real measurement, so a failed cell can never win a replacement
/// decision; the failed task is listed in the run's
/// [`RecoveryStats::failed_tasks`].
pub const FAILED_CELL_IPT: f64 = f64::MIN_POSITIVE;

/// Options of the full measured pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Exploration options (annealing + cross seeding).
    pub explore: ExploreOptions,
    /// Trace length for each cell of the cross-configuration matrix.
    pub matrix_ops: u64,
    /// Maximum passes of the paper's replacement rule when building
    /// the matrix ("if a workload performs better on some other
    /// workload's configuration, that configuration replaces its
    /// own").
    pub replacement_passes: u32,
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline {
            explore: ExploreOptions::default(),
            matrix_ops: 1_000_000,
            replacement_passes: 3,
        }
    }
}

impl Pipeline {
    /// Cheap settings for tests and demos.
    pub fn quick() -> Pipeline {
        Pipeline {
            explore: ExploreOptions::quick(),
            matrix_ops: 40_000,
            replacement_passes: 2,
        }
    }

    /// Check every invariant of the pipeline options (including the
    /// nested exploration and annealing options), so a bad
    /// configuration is one typed error up front instead of a panic
    /// mid-campaign.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), PipelineError> {
        self.explore.validate()?;
        if self.matrix_ops == 0 {
            return Err(PipelineError::InvalidPipeline(
                "matrix_ops must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Execution counters of one pipeline run: pool shape and evaluation
/// cache effectiveness across both the exploration and the matrix
/// phases. Informational only — results do not depend on it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Worker threads the fan-outs ran on.
    pub workers: usize,
    /// Tasks (anneals or cell evaluations) completed per worker.
    pub per_worker_tasks: Vec<u64>,
    /// Evaluation-cache counters, shared across both phases.
    pub cache: CacheCounters,
    /// Crash-safety counters spanning both phases: executed vs
    /// journal-salvaged tasks, retries, injected faults, and
    /// permanently failed tasks.
    pub recovery: RecoveryStats,
}

/// Everything the measured pipeline produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Each workload's customized core (the measured Table 4).
    pub cores: Vec<CustomizedCore>,
    /// The measured cross-configuration matrix (the measured Table 5).
    pub matrix: CrossPerfMatrix,
    /// Parallelism and cache counters of this run.
    pub stats: PipelineStats,
}

/// Measure the IPT of `profile` on `config` over `ops` micro-ops.
pub fn measure(profile: &WorkloadProfile, config: &CoreConfig, ops: u64) -> f64 {
    xps_sim::evaluate(profile, config, ops).ipt()
}

/// Build a cross-configuration matrix by simulating every workload on
/// every configuration, applying the paper's replacement rule until
/// the diagonal dominates (or the pass budget runs out).
pub fn cross_matrix(
    profiles: &[WorkloadProfile],
    configs: &mut [CoreConfig],
    ops: u64,
    passes: u32,
) -> CrossPerfMatrix {
    cross_matrix_with(profiles, configs, ops, passes, 1, None).0
}

/// [`cross_matrix`] with the cell measurements fanned out over `jobs`
/// workers (0 = available parallelism) and optionally memoized in
/// `cache`. Returns the matrix plus the per-worker task counts.
///
/// Cells are pure functions of `(profile, config, ops)` and are merged
/// in row-major order, so the matrix is bit-identical for any worker
/// count. With a cache shared with the exploration phase, replacement
/// passes mostly re-measure unchanged cells and hit instead of
/// re-simulating.
pub fn cross_matrix_with(
    profiles: &[WorkloadProfile],
    configs: &mut [CoreConfig],
    ops: u64,
    passes: u32,
    jobs: usize,
    cache: Option<&EvalCache>,
) -> (CrossPerfMatrix, Vec<u64>) {
    assert_eq!(
        profiles.len(),
        configs.len(),
        "one configuration per workload"
    );
    let ctx = RunContext::from_env().unwrap_or_else(|e| panic!("{e}"));
    cross_matrix_recoverable(profiles, configs, ops, passes, jobs, cache, &ctx)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The crash-safe [`cross_matrix_with`]: every cell measurement runs
/// through `ctx` — panic-isolated, retried, optionally journaled and
/// fault-injected. A cell that fails every attempt is reported in the
/// context's [`RecoveryStats`] and measured as [`FAILED_CELL_IPT`]
/// (so it can never win a replacement decision) instead of aborting
/// the run.
///
/// # Errors
///
/// Returns [`PipelineError`] when the configuration count mismatches
/// the workload count, the journal fails, or the assembled matrix is
/// invalid.
#[allow(clippy::too_many_arguments)]
pub fn cross_matrix_recoverable(
    profiles: &[WorkloadProfile],
    configs: &mut [CoreConfig],
    ops: u64,
    passes: u32,
    jobs: usize,
    cache: Option<&EvalCache>,
    ctx: &RunContext,
) -> Result<(CrossPerfMatrix, Vec<u64>), PipelineError> {
    if profiles.len() != configs.len() {
        return Err(PipelineError::InvalidPipeline(format!(
            "one configuration per workload ({} profiles, {} configs)",
            profiles.len(),
            configs.len()
        )));
    }
    let n = profiles.len();
    let cell = |w: usize, cfg: &CoreConfig| match cache {
        Some(cache) => cache.ipt(&profiles[w], cfg, ops),
        None => measure(&profiles[w], cfg, ops),
    };
    let unwrap_cell = |item: Result<f64, xps_explore::TaskError>| match item {
        Ok(v) => v,
        // Already recorded in the context's failed-task list; degrade.
        Err(_) => FAILED_CELL_IPT,
    };
    let mut per_worker_tasks = Vec::new();
    let mut ipt = vec![vec![0.0f64; n]; n];
    // Each cell's wire description: pure (profile, config, ops), so a
    // dispatched cell is bit-identical to the local measurement.
    let describe = |w: usize, cfg: &CoreConfig| xps_explore::TaskSpec::eval(&profiles[w], cfg, ops);
    let fill_phase = xps_trace::span("matrix.fill");
    let fan = ctx.run_fan_tasks(
        jobs,
        "matrix",
        n * n,
        |t| Some(describe(t / n, &configs[t % n])),
        |t| cell(t / n, &configs[t % n]),
    )?;
    fill_phase.end_with(|| xps_trace::attr("cells", n * n));
    merge_counts(&mut per_worker_tasks, &fan.per_worker);
    for (t, item) in fan.items.into_iter().enumerate() {
        ipt[t / n][t % n] = unwrap_cell(item);
    }
    let replace_phase = xps_trace::span("matrix.replace");
    let mut replacements = 0u64;
    for _ in 0..passes {
        let mut changed = false;
        for w in 0..n {
            let best = (0..n)
                // xps-allow(no-unwrap-in-lib): matrix cells are measured IPTs or the finite FAILED_CELL_IPT sentinel; never NaN
                .max_by(|&a, &b| ipt[w][a].partial_cmp(&ipt[w][b]).expect("finite"))
                // xps-allow(no-unwrap-in-lib): the matrix is square over at least one workload
                .expect("non-empty row");
            if best != w && ipt[w][best] > ipt[w][w] {
                // Adopt the better configuration as w's own; its row
                // and column must be re-measured (one fan-out: the
                // first n tasks are the row, the rest the column).
                configs[w] = CoreConfig {
                    name: profiles[w].name.clone(),
                    ..configs[best].clone()
                };
                changed = true;
                replacements += 1;
                xps_trace::instant("matrix.adopt", || {
                    xps_trace::attrs([
                        ("workload", profiles[w].name.as_str().into()),
                        ("from", profiles[best].name.as_str().into()),
                    ])
                });
                let fan = ctx.run_fan_tasks(
                    jobs,
                    "rematrix",
                    2 * n,
                    |t| {
                        Some(if t < n {
                            describe(w, &configs[t])
                        } else {
                            describe(t - n, &configs[w])
                        })
                    },
                    |t| {
                        if t < n {
                            cell(w, &configs[t])
                        } else {
                            cell(t - n, &configs[w])
                        }
                    },
                )?;
                merge_counts(&mut per_worker_tasks, &fan.per_worker);
                for (t, item) in fan.items.into_iter().enumerate() {
                    let v = unwrap_cell(item);
                    if t < n {
                        ipt[w][t] = v;
                    } else {
                        ipt[t - n][w] = v;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    replace_phase.end_with(|| xps_trace::attr("replacements", replacements));
    let matrix =
        CrossPerfMatrix::from_fn(profiles.iter().map(|p| p.name.clone()).collect(), |w, c| {
            ipt[w][c]
        })
        .map_err(PipelineError::InvalidMatrix)?
        .with_weights(profiles.iter().map(|p| p.weight).collect())
        .map_err(PipelineError::InvalidMatrix)?;
    Ok((matrix, per_worker_tasks))
}

impl Pipeline {
    /// Run the full pipeline over `profiles`.
    ///
    /// One evaluation cache and one worker pool (sized by
    /// `explore.jobs`; 0 = available parallelism) span both phases:
    /// the exploration warms the cache, and the cross-configuration
    /// matrix then reuses every evaluation it can. The results are
    /// bit-identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty, the pipeline options are
    /// invalid, or the run fails terminally; see [`Pipeline::try_run`]
    /// for the same run with typed errors.
    pub fn run(&self, profiles: &[WorkloadProfile]) -> PipelineResult {
        self.try_run(profiles).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Pipeline::run`] with typed errors, honouring the `XPS_FAULTS`
    /// environment variable (deterministic fault injection for tests).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when the options are invalid, the
    /// fault specification is malformed, or the run fails terminally.
    pub fn try_run(&self, profiles: &[WorkloadProfile]) -> Result<PipelineResult, PipelineError> {
        let ctx = RunContext::from_env()?;
        self.run_recoverable(profiles, &ctx)
    }

    /// The crash-safe [`Pipeline::run`]: every task — anneal start,
    /// cross-seed evaluation, re-anneal, matrix cell — runs through
    /// `ctx`, which isolates panics, retries failed attempts, and
    /// (when a journal is attached) checkpoints each completed task so
    /// an interrupted campaign can resume without re-running finished
    /// work. Results are bit-identical to an uninterrupted
    /// single-threaded run.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when the options are invalid, the
    /// journal fails, or a whole workload fails terminally.
    pub fn run_recoverable(
        &self,
        profiles: &[WorkloadProfile],
        ctx: &RunContext,
    ) -> Result<PipelineResult, PipelineError> {
        self.run_recoverable_with(profiles, ctx, &EvalCache::new(), None)
    }

    /// [`Pipeline::run_recoverable`] against a caller-supplied
    /// evaluation cache and an optional progress sink — the embedding
    /// entry point for a long-lived service. The cache outlives the
    /// run, so a daemon serving repeated or overlapping requests reuses
    /// every evaluation across them; the sink streams annealing steps
    /// and task completions live. Both are observational: results are
    /// bit-identical to [`Pipeline::run_recoverable`].
    ///
    /// # Errors
    ///
    /// As [`Pipeline::run_recoverable`].
    pub fn run_recoverable_with(
        &self,
        profiles: &[WorkloadProfile],
        ctx: &RunContext,
        cache: &EvalCache,
        progress: Option<&ProgressSink>,
    ) -> Result<PipelineResult, PipelineError> {
        self.validate()?;
        let mut explorer = Campaign::try_new(self.explore.clone())?;
        if let Some(sink) = progress {
            explorer = explorer.with_progress(sink.clone());
        }
        let explored = explorer.explore_recoverable(profiles, cache, ctx)?;
        let mut configs: Vec<CoreConfig> =
            explored.cores.iter().map(|c| c.config.clone()).collect();
        let (matrix, matrix_tasks) = cross_matrix_recoverable(
            profiles,
            &mut configs,
            self.matrix_ops,
            self.replacement_passes,
            self.explore.jobs,
            Some(cache),
            ctx,
        )?;
        let mut per_worker_tasks = explored.stats.per_worker_tasks.clone();
        merge_counts(&mut per_worker_tasks, &matrix_tasks);
        let cores = explored
            .cores
            .into_iter()
            .zip(configs)
            .enumerate()
            .map(|(i, (mut core, config))| {
                core.ipt = matrix.ipt(i, i);
                core.config = config;
                core
            })
            .collect();
        Ok(PipelineResult {
            cores,
            matrix,
            stats: PipelineStats {
                workers: resolve_jobs(self.explore.jobs),
                per_worker_tasks,
                cache: cache.counters(),
                recovery: ctx.stats(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xps_workload::spec;

    #[test]
    fn quick_pipeline_three_workloads() {
        let profiles: Vec<_> = ["gzip", "mcf", "crafty"]
            .iter()
            .map(|n| spec::profile(n).expect("known benchmark"))
            .collect();
        let r = Pipeline::quick().run(&profiles);
        assert_eq!(r.cores.len(), 3);
        assert_eq!(r.matrix.len(), 3);
        assert!(
            r.matrix.is_diagonal_dominant(),
            "replacement rule must make the diagonal dominate"
        );
        for (i, core) in r.cores.iter().enumerate() {
            assert!((core.ipt - r.matrix.ipt(i, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_matrix_replacement_rule() {
        let profiles: Vec<_> = ["twolf", "vpr"]
            .iter()
            .map(|n| spec::profile(n).expect("known benchmark"))
            .collect();
        // Deliberately give twolf a terrible configuration; the rule
        // should replace it with vpr's.
        let mut bad = CoreConfig::initial();
        bad.name = "twolf".to_string();
        bad.rob_size = 32;
        bad.iq_size = 8;
        bad.lsq_size = 16;
        bad.clock_ns = 1.0;
        let mut good = CoreConfig::initial();
        good.name = "vpr".to_string();
        let mut configs = vec![bad, good];
        let m = cross_matrix(&profiles, &mut configs, 20_000, 3);
        assert!(m.is_diagonal_dominant());
        assert_eq!(
            configs[0].rob_size, configs[1].rob_size,
            "twolf adopted vpr's config"
        );
    }
}
