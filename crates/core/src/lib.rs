//! # xps-core — configurational workload characterization
//!
//! The facade crate of the xp-scalar reproduction (Najaf-abadi &
//! Rotenberg, *Configurational Workload Characterization*, ISPASS
//! 2008). It re-exports every subsystem and adds two things of its
//! own:
//!
//! * [`paper`] — the paper's published data (Table 4 customized
//!   configurations, the Table 5 cross-configuration IPT matrix, and
//!   the Appendix A slowdown percentages) embedded as fixtures, so the
//!   analysis layer can be validated *exactly* against the published
//!   results and so the paper's configurations can be simulated
//!   directly;
//! * [`pipeline`] — the end-to-end measured reproduction: statistical
//!   workload models → simulated-annealing design exploration →
//!   cross-configuration evaluation → communal customization, i.e.
//!   the whole methodology of the paper run on this repository's own
//!   substrate;
//! * [`report`] — the Table 7 summary (ideal vs. homogeneous vs.
//!   complete-search vs. surrogate dual-core designs).
//!
//! ## Quick start
//!
//! ```
//! use xps_core::paper;
//! use xps_core::communal::{best_combination, Merit};
//!
//! // Reproduce Table 6's headline row from the published Table 5:
//! // the best single configuration for harmonic-mean IPT is gcc's.
//! let m = paper::table5_matrix();
//! let best = best_combination(&m, 1, Merit::HarmonicMean);
//! assert_eq!(best.names, vec!["gcc".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod paper;
pub mod pipeline;
pub mod report;

/// Re-export of the CACTI-style timing model.
pub use xps_cacti as cacti;
/// Re-export of the communal-customization analysis layer.
pub use xps_communal as communal;
/// Re-export of the design-space exploration tool.
pub use xps_explore as explore;
/// Re-export of the superscalar timing simulator.
pub use xps_sim as sim;
/// Re-export of the span-tracing / self-profiling instrument layer.
pub use xps_trace as trace;
/// Re-export of the workload models and characterization.
pub use xps_workload as workload;

pub use error::PipelineError;
pub use pipeline::{
    cross_matrix, cross_matrix_recoverable, cross_matrix_with, measure, Pipeline, PipelineResult,
    PipelineStats, FAILED_CELL_IPT,
};
pub use report::{table7, Table7, Table7Row};
