//! The paper's published data, embedded as fixtures.
//!
//! Three artifacts are transcribed verbatim from the paper:
//!
//! * [`TABLE5`] — the cross-configuration IPT matrix (Table 5): entry
//!   `(w, c)` is the IPT of benchmark `w` on the customized
//!   architecture of benchmark `c`;
//! * [`APPENDIX_A`] — the percentage slowdowns the paper publishes
//!   alongside (its Appendix A; derivable from Table 5 up to rounding);
//! * [`table4_configs`] — the customized architectural configurations
//!   of Table 4, expressed as simulatable [`CoreConfig`]s.
//!
//! The analysis layer (`xps-communal`) run against [`table5_matrix`]
//! reproduces the paper's Table 6, Figure 4, Figures 6–8, §5.3, and
//! Table 7; the integration tests in `tests/paper_reproduction.rs`
//! assert those numbers.

use xps_cacti::CacheGeometry;
use xps_communal::CrossPerfMatrix;
use xps_sim::{CacheConfig, CoreConfig};

/// Benchmark order of every table in the paper.
pub const BENCHMARKS: [&str; 11] = [
    "bzip", "crafty", "gap", "gcc", "gzip", "mcf", "parser", "perl", "twolf", "vortex", "vpr",
];

/// Table 5: IPT of each benchmark (row) on the customized architecture
/// of each benchmark (column).
pub const TABLE5: [[f64; 11]; 11] = [
    // bzip  crafty gap   gcc   gzip  mcf   parser perl  twolf vortex vpr
    [
        3.15, 2.02, 1.73, 2.41, 2.11, 2.56, 2.09, 2.03, 3.05, 2.24, 2.95,
    ], // bzip
    [
        0.78, 2.31, 1.15, 2.11, 1.91, 0.48, 1.97, 2.06, 1.29, 2.12, 1.30,
    ], // crafty
    [
        1.39, 2.75, 3.02, 2.60, 2.92, 0.89, 2.89, 2.79, 2.00, 2.47, 2.05,
    ], // gap
    [
        1.17, 2.17, 1.42, 2.27, 2.03, 0.75, 2.02, 1.63, 1.79, 2.06, 1.80,
    ], // gcc
    [
        1.78, 2.56, 2.02, 2.88, 3.13, 1.28, 3.01, 2.14, 2.39, 2.57, 2.37,
    ], // gzip
    [
        0.74, 0.40, 0.30, 0.45, 0.29, 0.93, 0.32, 0.41, 0.52, 0.42, 0.52,
    ], // mcf
    [
        1.86, 2.11, 2.19, 2.08, 2.47, 1.32, 2.62, 1.86, 2.39, 2.15, 2.30,
    ], // parser
    [
        0.85, 2.02, 0.90, 1.81, 1.67, 0.54, 1.65, 2.07, 1.32, 1.81, 1.30,
    ], // perl
    [
        1.65, 0.98, 0.81, 1.26, 0.88, 1.18, 1.10, 0.91, 1.83, 1.16, 1.77,
    ], // twolf
    [
        1.68, 2.98, 2.55, 3.09, 2.91, 1.07, 3.41, 2.78, 2.61, 3.43, 2.54,
    ], // vortex
    [
        1.56, 1.33, 1.13, 1.72, 1.09, 1.05, 1.36, 1.29, 2.00, 1.51, 2.09,
    ], // vpr
];

/// Appendix A: the percentage slowdown of each benchmark (row) on the
/// customized architecture of each benchmark (column), as published.
pub const APPENDIX_A: [[f64; 11]; 11] = [
    [
        0.0, 35.0, 45.0, 23.0, 33.0, 18.0, 33.0, 35.0, 3.1, 28.0, 6.0,
    ],
    [
        66.0, 0.0, 50.0, 8.0, 17.0, 79.0, 14.0, 10.0, 44.0, 8.0, 43.0,
    ],
    [53.0, 8.0, 0.0, 13.0, 3.3, 70.0, 4.0, 7.0, 33.0, 18.0, 32.0],
    [
        48.0, 4.4, 37.0, 0.0, 10.0, 66.0, 11.0, 28.0, 21.0, 9.0, 20.0,
    ],
    [
        43.0, 18.0, 35.0, 7.0, 0.0, 59.0, 3.8, 31.0, 23.0, 17.0, 24.0,
    ],
    [
        20.0, 56.0, 67.0, 51.0, 68.0, 0.0, 65.0, 55.0, 44.0, 54.0, 44.0,
    ],
    [
        29.0, 19.0, 16.0, 20.0, 5.0, 49.0, 0.0, 29.0, 8.0, 17.0, 12.0,
    ],
    [
        58.0, 2.0, 56.0, 12.0, 19.0, 73.0, 20.0, 0.0, 36.0, 12.0, 37.0,
    ],
    [
        9.0, 46.0, 55.0, 31.0, 51.0, 35.0, 39.0, 50.0, 0.0, 36.0, 3.2,
    ],
    [
        51.0, 13.0, 25.0, 9.0, 15.0, 68.0, 0.5, 18.0, 23.0, 0.0, 25.0,
    ],
    [
        25.0, 36.0, 45.0, 17.0, 47.0, 49.0, 34.0, 38.0, 4.3, 27.0, 0.0,
    ],
];

/// The published Table 5 as a [`CrossPerfMatrix`] with equal weights.
pub fn table5_matrix() -> CrossPerfMatrix {
    CrossPerfMatrix::new(
        BENCHMARKS.iter().map(|s| s.to_string()).collect(),
        TABLE5.iter().map(|row| row.to_vec()).collect(),
    )
    // xps-allow(no-unwrap-in-lib): the embedded Table 5 fixture is 11x11 by construction and covered by tests
    .expect("the published table is a valid matrix")
}

/// One row of Table 4 in compact form:
/// `(name, width, rob, iq, lsq, wakeup, sched_depth, fe_depth,
///   clock_ns, (l1_sets, l1_assoc, l1_block, l1_lat),
///   (l2_sets, l2_assoc, l2_block, l2_lat))`.
type Table4Row = (
    &'static str,
    u32,
    u32,
    u32,
    u32,
    u32,
    u32,
    u32,
    f64,
    (u32, u32, u32, u32),
    (u32, u32, u32, u32),
);

/// Table 4, transcribed.
const TABLE4: [Table4Row; 11] = [
    (
        "bzip",
        5,
        512,
        64,
        128,
        0,
        1,
        4,
        0.49,
        (1024, 2, 32, 2),
        (8192, 4, 64, 15),
    ),
    (
        "crafty",
        8,
        64,
        32,
        64,
        3,
        3,
        12,
        0.19,
        (16384, 1, 8, 5),
        (128, 16, 64, 7),
    ),
    (
        "gap",
        4,
        128,
        32,
        256,
        1,
        1,
        6,
        0.33,
        (2048, 1, 8, 2),
        (128, 4, 256, 4),
    ),
    (
        "gcc",
        4,
        256,
        32,
        256,
        1,
        2,
        7,
        0.31,
        (32768, 1, 8, 4),
        (1024, 8, 64, 6),
    ),
    (
        "gzip",
        4,
        64,
        32,
        128,
        1,
        1,
        7,
        0.29,
        (256, 1, 128, 3),
        (4096, 1, 128, 5),
    ),
    (
        "mcf",
        3,
        1024,
        64,
        64,
        0,
        1,
        4,
        0.45,
        (1024, 2, 128, 5),
        (8192, 4, 128, 27),
    ),
    (
        "parser",
        4,
        512,
        32,
        256,
        1,
        2,
        7,
        0.29,
        (2048, 1, 64, 3),
        (32, 8, 512, 12),
    ),
    (
        "perl",
        5,
        256,
        32,
        128,
        3,
        4,
        12,
        0.19,
        (2048, 1, 8, 3),
        (128, 16, 64, 7),
    ),
    (
        "twolf",
        5,
        512,
        64,
        256,
        1,
        2,
        6,
        0.33,
        (128, 8, 64, 3),
        (2048, 4, 128, 12),
    ),
    (
        "vortex",
        7,
        512,
        32,
        256,
        2,
        4,
        8,
        0.27,
        (1024, 4, 32, 5),
        (128, 16, 128, 6),
    ),
    (
        "vpr",
        5,
        256,
        64,
        64,
        1,
        2,
        6,
        0.30,
        (128, 2, 32, 2),
        (1024, 8, 128, 12),
    ),
];

/// The customized configurations of Table 4 as simulatable
/// [`CoreConfig`]s (LSQ pipeline depth fixed at the paper's Table 3
/// value of 2).
pub fn table4_configs() -> Vec<CoreConfig> {
    TABLE4
        .iter()
        .map(
            |&(name, width, rob, iq, lsq, wakeup, sched, fe, clock, l1, l2)| {
                let (l1s, l1a, l1b, l1lat) = l1;
                let (l2s, l2a, l2b, l2lat) = l2;
                let cfg = CoreConfig {
                    name: name.to_string(),
                    clock_ns: clock,
                    width,
                    frontend_depth: fe,
                    rob_size: rob,
                    iq_size: iq,
                    lsq_size: lsq,
                    wakeup_extra: wakeup,
                    sched_depth: sched,
                    lsq_depth: 2,
                    l1: CacheConfig {
                        geometry: CacheGeometry::new(l1s, l1a, l1b),
                        latency: l1lat,
                    },
                    l2: CacheConfig {
                        geometry: CacheGeometry::new(l2s, l2a, l2b),
                        latency: l2lat,
                    },
                };
                cfg.validate()
                    .unwrap_or_else(|e| panic!("Table 4 config `{name}` invalid: {e}"));
                cfg
            },
        )
        .collect()
}

/// The Table 4 configuration of a single benchmark.
pub fn table4_config(name: &str) -> Option<CoreConfig> {
    table4_configs().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_is_square_and_diagonal_dominant() {
        let m = table5_matrix();
        assert_eq!(m.len(), 11);
        assert!(
            m.is_diagonal_dominant(),
            "the paper's replacement rule guarantees diagonal dominance"
        );
    }

    #[test]
    fn appendix_a_matches_table5_within_rounding() {
        // The published slowdown percentages must agree with the ones
        // derived from Table 5 to the printed precision.
        let m = table5_matrix();
        for w in 0..11 {
            for c in 0..11 {
                let derived = m.slowdown(w, c) * 100.0;
                let published = APPENDIX_A[w][c];
                // Entries are printed to 0 or 1 decimal; IPTs to two,
                // so allow a generous rounding window.
                assert!(
                    (derived - published).abs() < 1.6,
                    "({}, {}): derived {derived:.2}% vs published {published}%",
                    BENCHMARKS[w],
                    BENCHMARKS[c]
                );
            }
        }
    }

    #[test]
    fn table4_configs_validate_and_match_headlines() {
        let cfgs = table4_configs();
        assert_eq!(cfgs.len(), 11);
        let mcf = table4_config("mcf").expect("mcf present");
        assert_eq!(mcf.rob_size, 1024);
        assert!((mcf.clock_ns - 0.45).abs() < 1e-12);
        assert_eq!(mcf.l2.geometry.capacity_bytes(), 4 * 1024 * 1024);
        let crafty = table4_config("crafty").expect("crafty present");
        assert_eq!(crafty.width, 8);
        assert_eq!(crafty.frontend_depth, 12);
        assert_eq!(crafty.l1.geometry.capacity_bytes(), 128 * 1024);
    }

    #[test]
    fn paper_ranges_hold() {
        // §4.2: width 3–7 (8 for crafty per Table 4), ROB 64–1024,
        // clock 1.72–5.2 GHz, L1 8K–256K, L2 128K–4M.
        for c in table4_configs() {
            assert!((3..=8).contains(&c.width), "{}", c.name);
            assert!((64..=1024).contains(&c.rob_size), "{}", c.name);
            let ghz = c.frequency_ghz();
            assert!((1.7..=5.3).contains(&ghz), "{}: {ghz} GHz", c.name);
            let l1 = c.l1.geometry.capacity_bytes();
            assert!((8 * 1024..=256 * 1024).contains(&l1), "{}: L1 {l1}", c.name);
            let l2 = c.l2.geometry.capacity_bytes();
            assert!(
                (128 * 1024..=4 * 1024 * 1024).contains(&l2),
                "{}: L2 {l2}",
                c.name
            );
        }
    }

    #[test]
    fn frontend_depths_follow_the_derivation() {
        // Table 4's front-end depths equal
        // floor(2 ns / (clock − latch)) — the rule xps-explore uses —
        // for 10 of the 11 benchmarks exactly; vpr (printed clock
        // 0.3 ns, likely rounded) is off by one stage.
        let mut exact = 0;
        for c in table4_configs() {
            let derived = CoreConfig::derived_frontend_depth(c.clock_ns, 0.03);
            assert!(
                c.frontend_depth.abs_diff(derived) <= 1,
                "{} at {} ns: published {}, derived {derived}",
                c.name,
                c.clock_ns,
                c.frontend_depth
            );
            if c.frontend_depth == derived {
                exact += 1;
            }
        }
        assert!(exact >= 10, "only {exact}/11 rows matched exactly");
    }
}
