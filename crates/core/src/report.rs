//! The Table 7 summary: what a dual-core CMP achieves under each
//! design methodology.

use serde::{Deserialize, Serialize};
use xps_communal::{
    assign_surrogates, best_combination, ideal_performance, CrossPerfMatrix, Merit, Propagation,
};

/// One row of Table 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table7Row {
    /// Scenario description.
    pub scenario: String,
    /// Architectures employed (names).
    pub architectures: Vec<String>,
    /// Harmonic-mean IPT of the scenario.
    pub harmonic_ipt: f64,
    /// Fractional slowdown versus the ideal scenario.
    pub slowdown_vs_ideal: f64,
}

/// The paper's Table 7: ideal, homogeneous, complete-search
/// heterogeneous, and greedy-surrogate heterogeneous dual-core
/// designs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table7 {
    /// The four scenario rows, in the paper's order.
    pub rows: Vec<Table7Row>,
}

/// Build Table 7 from a cross-configuration matrix.
///
/// * *Ideal*: every workload on its own customized architecture.
/// * *Homogeneous*: every core is the best single configuration for
///   harmonic-mean IPT.
/// * *Complete search*: the best dual-core combination for
///   harmonic-mean IPT.
/// * *Surrogates*: the dual-core design produced by greedy surrogate
///   assignment with full propagation (§5.4.2); workloads run where
///   the greedy put them, not on their best core of the pair.
pub fn table7(m: &CrossPerfMatrix) -> Table7 {
    let (_, ideal_har) = ideal_performance(m);
    let single = best_combination(m, 1, Merit::HarmonicMean);
    let pair = best_combination(m, 2, Merit::HarmonicMean);
    let surro = assign_surrogates(m, Propagation::ForwardBackward, 2);
    let surro_har = surro.harmonic_ipt(m);
    let names =
        |cores: &[usize]| -> Vec<String> { cores.iter().map(|&c| m.names()[c].clone()).collect() };
    let rows = vec![
        Table7Row {
            scenario: "ideal (every workload on its own customized architecture)".to_string(),
            architectures: m.names().to_vec(),
            harmonic_ipt: ideal_har,
            slowdown_vs_ideal: 0.0,
        },
        Table7Row {
            scenario: "homogeneous (best single configuration)".to_string(),
            architectures: single.names.clone(),
            harmonic_ipt: single.har_ipt,
            slowdown_vs_ideal: 1.0 - single.har_ipt / ideal_har,
        },
        Table7Row {
            scenario: "heterogeneous, complete search".to_string(),
            architectures: pair.names.clone(),
            harmonic_ipt: pair.har_ipt,
            slowdown_vs_ideal: 1.0 - pair.har_ipt / ideal_har,
        },
        Table7Row {
            scenario: "heterogeneous, greedy surrogates (full propagation)".to_string(),
            architectures: names(&surro.final_architectures),
            harmonic_ipt: surro_har,
            slowdown_vs_ideal: 1.0 - surro_har / ideal_har,
        },
    ];
    Table7 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use xps_communal::CrossPerfMatrix;

    #[test]
    fn table7_on_synthetic_matrix() {
        // Two complementary workload families: heterogeneity closes
        // most of the homogeneous design's gap.
        let m = CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                vec![2.0, 1.9, 0.6, 0.6],
                vec![1.9, 2.0, 0.6, 0.6],
                vec![0.6, 0.6, 2.0, 1.9],
                vec![0.6, 0.6, 1.9, 2.0],
            ],
        )
        .expect("valid");
        let t = table7(&m);
        let ideal = t.rows[0].harmonic_ipt;
        assert!((ideal - 2.0).abs() < 1e-9);
        // Homogeneous: best single core leaves half the set at 0.6.
        assert!(t.rows[1].slowdown_vs_ideal > 0.3);
        // A pair serves both families at >= 1.9.
        assert!(t.rows[2].harmonic_ipt > 1.89);
        assert!(t.rows[2].slowdown_vs_ideal < 0.06);
    }

    #[test]
    fn slowdowns_are_relative_to_ideal() {
        let t = table7(&paper::table5_matrix());
        for row in &t.rows {
            let back = t.rows[0].harmonic_ipt * (1.0 - row.slowdown_vs_ideal);
            assert!((back - row.harmonic_ipt).abs() < 1e-9, "{}", row.scenario);
        }
    }

    #[test]
    fn table7_rows_ordered_by_quality() {
        let t = table7(&paper::table5_matrix());
        assert_eq!(t.rows.len(), 4);
        let ideal = t.rows[0].harmonic_ipt;
        for row in &t.rows[1..] {
            assert!(row.harmonic_ipt <= ideal, "{}", row.scenario);
            assert!(row.slowdown_vs_ideal >= 0.0);
        }
        // Complete-search heterogeneous beats homogeneous.
        assert!(t.rows[2].harmonic_ipt > t.rows[1].harmonic_ipt);
    }
}
