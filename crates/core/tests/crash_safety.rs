//! End-to-end crash-safety guarantees of the measured pipeline:
//!
//! * fault-injected runs (transient panics in ~20% of tasks) retry to
//!   success and produce **byte-identical** Table 4 / Table 5 output
//!   to a fault-free single-threaded run;
//! * a run interrupted mid-campaign resumes from its journal, re-runs
//!   only the unjournaled tasks (the counters prove it), and again
//!   reproduces the identical bytes;
//! * a permanently failing task degrades the run instead of aborting
//!   it, and is reported by name.

use std::path::PathBuf;
use xps_core::explore::{FaultKind, FaultPlan, Journal, RunContext};
use xps_core::pipeline::{Pipeline, PipelineResult};
use xps_core::workload::{spec, WorkloadProfile};

fn profiles() -> Vec<WorkloadProfile> {
    ["gzip", "mcf", "crafty"]
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect()
}

/// A reduced-budget pipeline so each test run stays in the seconds
/// range; the crash-safety machinery is budget-independent.
fn mini(jobs: usize) -> Pipeline {
    let mut p = Pipeline::quick();
    p.explore.anneal.iterations = 40;
    p.explore.anneal.eval_ops_early = 10_000;
    p.explore.anneal.eval_ops_late = 20_000;
    p.explore.reanneal_iterations = 8;
    p.explore.jobs = jobs;
    p.matrix_ops = 20_000;
    p
}

/// The deliverable bytes of a run: the serialized Table 4 (customized
/// cores) and Table 5 (cross-configuration matrix). Stats are
/// excluded — counters legitimately differ between runs.
fn deliverable(r: &PipelineResult) -> String {
    serde_json::to_string(&(&r.cores, &r.matrix)).expect("results serialize")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xps-crash-safety");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

#[test]
fn transient_faults_retry_to_byte_identical_output() {
    let p = profiles();
    let clean = mini(1)
        .run_recoverable(&p, &RunContext::new())
        .expect("clean run");

    // ~20% of first attempts panic, selected deterministically by task
    // key; every task succeeds on retry.
    let ctx = RunContext::new()
        .with_faults(FaultPlan::rate(20, 7, 1, FaultKind::Panic))
        .with_retries(2);
    let faulted = mini(2).run_recoverable(&p, &ctx).expect("faulted run");

    let rec = &faulted.stats.recovery;
    assert!(rec.faults_injected > 0, "the plan must actually fire");
    assert!(rec.retried > 0, "faulted tasks must be retried");
    assert!(
        rec.failed_tasks.is_empty(),
        "single-attempt faults must never exhaust a 2-retry budget"
    );
    assert_eq!(
        deliverable(&faulted),
        deliverable(&clean),
        "recovered output must be byte-identical to the fault-free run"
    );
}

#[test]
fn interrupted_run_resumes_from_journal_bit_for_bit() {
    let p = profiles();
    let path = tmp("resume");

    // Full journaled run — the reference output and the journal an
    // interrupted campaign would have left behind (a kill between
    // tasks leaves a clean prefix of it; we simulate one below).
    let mut ctx = RunContext::new().with_journal(Journal::create(&path).expect("create"));
    let full = mini(2).run_recoverable(&p, &ctx).expect("full run");
    let total = ctx.stats().executed;
    assert_eq!(ctx.stats().salvaged, 0);
    drop(ctx.take_journal());

    // Interrupt: keep only the first half of the journal's records, as
    // if the process died mid-campaign.
    let text = std::fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, total, "one record per executed task");
    let keep = lines.len() / 2;
    let mut truncated: String = lines[..keep].join("\n");
    truncated.push('\n');
    std::fs::write(&path, truncated).expect("truncate journal");

    // Resume: journaled tasks are salvaged, the rest re-run, and the
    // deliverable bytes match the uninterrupted run exactly.
    let ctx = RunContext::new().with_journal(Journal::open(&path).expect("open"));
    let resumed = mini(2).run_recoverable(&p, &ctx).expect("resumed run");
    let rec = ctx.stats();
    assert_eq!(rec.salvaged, keep as u64, "salvage exactly the journal");
    assert_eq!(
        rec.executed,
        total - keep as u64,
        "re-run exactly the missing tasks"
    );
    assert_eq!(
        deliverable(&resumed),
        deliverable(&full),
        "resumed output must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn permanent_matrix_failures_degrade_and_are_reported() {
    let p = profiles();
    // Every cross-matrix cell fails every attempt; the pipeline must
    // still complete (cells degrade to the failed-cell sentinel) and
    // name what it lost.
    let ctx = RunContext::new()
        .with_faults(FaultPlan::targets(["matrix#"], u32::MAX, FaultKind::Panic))
        .with_retries(1);
    let r = mini(2)
        .run_recoverable(&p, &ctx)
        .expect("degraded run still completes");
    let rec = &r.stats.recovery;
    assert!(
        rec.failed_tasks.iter().all(|t| t.starts_with("matrix#")),
        "only matrix cells were targeted: {:?}",
        rec.failed_tasks
    );
    assert_eq!(
        rec.failed_tasks.len(),
        p.len() * p.len(),
        "every cell of the first matrix fan failed"
    );
    for w in 0..r.matrix.len() {
        for c in 0..r.matrix.len() {
            assert_eq!(
                r.matrix.ipt(w, c),
                xps_core::FAILED_CELL_IPT,
                "failed cells must carry the sentinel"
            );
        }
    }
}
