//! Complete search over core combinations (paper §5.2, Table 6,
//! Figure 4).

use crate::matrix::CrossPerfMatrix;
use crate::metrics::Merit;
use serde::{Deserialize, Serialize};

/// The outcome of a complete search for one core count and merit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComboResult {
    /// Indices of the chosen architectures, ascending.
    pub cores: Vec<usize>,
    /// Names of the chosen architectures, matrix order.
    pub names: Vec<String>,
    /// The merit value the combination was selected by.
    pub merit_value: f64,
    /// Average IPT of the combination (Table 6 column "avg. IPT").
    pub avg_ipt: f64,
    /// Harmonic-mean IPT of the combination (Table 6 column
    /// "har. IPT").
    pub har_ipt: f64,
}

/// Iterate over all `k`-subsets of `0..n` in lexicographic order,
/// calling `f` on each (as a slice).
pub fn combinations(n: usize, k: usize, mut f: impl FnMut(&[usize])) {
    assert!(k >= 1 && k <= n, "k must be in 1..=n");
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Complete search: the best `k`-core combination under `merit`
/// (the paper's Table 6 procedure — "a complete search of all possible
/// core-combinations").
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of architectures.
pub fn best_combination(m: &CrossPerfMatrix, k: usize, merit: Merit) -> ComboResult {
    let n = m.len();
    let pass = xps_trace::span("communal.combination");
    let mut evaluated = 0u64;
    let mut best: Option<(Vec<usize>, f64)> = None;
    combinations(n, k, |combo| {
        evaluated += 1;
        let v = merit.evaluate(m, combo);
        let better = match &best {
            None => true,
            Some((_, bv)) => v > *bv,
        };
        if better {
            best = Some((combo.to_vec(), v));
        }
    });
    pass.end_with(|| {
        xps_trace::attrs([
            ("n", n.into()),
            ("k", k.into()),
            ("evaluated", evaluated.into()),
        ])
    });
    // xps-allow(no-unwrap-in-lib): choose(n, k) enumerations with validated k >= 1 always yield at least one subset
    let (cores, merit_value) = best.expect("at least one combination exists");
    let names = cores.iter().map(|&i| m.names()[i].clone()).collect();
    ComboResult {
        avg_ipt: Merit::Average.evaluate(m, &cores),
        har_ipt: Merit::HarmonicMean.evaluate(m, &cores),
        cores,
        names,
        merit_value,
    }
}

/// The "ideal" row of Table 6: every workload on its own customized
/// architecture. Returns `(avg IPT, harmonic-mean IPT)`.
pub fn ideal_performance(m: &CrossPerfMatrix) -> (f64, f64) {
    let all: Vec<usize> = (0..m.len()).collect();
    // With diagonal dominance, best-of-all = own architecture.
    (
        Merit::Average.evaluate(m, &all),
        Merit::HarmonicMean.evaluate(m, &all),
    )
}

/// Figure 4's data: for each workload (row), its IPT on the best
/// available core of each given core set (one series per set).
pub fn per_benchmark_series(m: &CrossPerfMatrix, sets: &[Vec<usize>]) -> Vec<Vec<f64>> {
    (0..m.len())
        .map(|w| {
            sets.iter()
                .map(|s| m.ipt(w, m.best_config_for(w, s)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                vec![4.0, 2.0, 1.0, 3.0],
                vec![1.0, 2.0, 1.0, 1.5],
                vec![1.0, 1.0, 2.0, 1.0],
                vec![3.0, 1.0, 1.0, 3.5],
            ],
        )
        .expect("valid")
    }

    #[test]
    fn combination_count() {
        let mut count = 0;
        combinations(5, 2, |_| count += 1);
        assert_eq!(count, 10);
        let mut count = 0;
        combinations(11, 4, |_| count += 1);
        assert_eq!(count, 330);
    }

    #[test]
    fn combinations_are_sorted_unique() {
        combinations(6, 3, |c| {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        });
    }

    #[test]
    fn best_single_core() {
        // avg on a: (4+1+1+3)/4 = 2.25; b: 1.5; c: 1.25; d: 2.25 →
        // tie a/d, strict `>` keeps the first (a).
        let r = best_combination(&m(), 1, Merit::Average);
        assert_eq!(r.cores, vec![0]);
        assert!((r.avg_ipt - 2.25).abs() < 1e-12);
    }

    #[test]
    fn pair_beats_single() {
        let s = best_combination(&m(), 1, Merit::HarmonicMean);
        let p = best_combination(&m(), 2, Merit::HarmonicMean);
        assert!(p.har_ipt >= s.har_ipt);
        assert_eq!(p.cores.len(), 2);
    }

    #[test]
    fn more_cores_never_hurt() {
        let mm = m();
        for merit in Merit::ALL {
            let mut prev = f64::MIN;
            for k in 1..=mm.len() {
                let r = best_combination(&mm, k, merit);
                assert!(
                    r.merit_value >= prev - 1e-12,
                    "{merit:?} k={k}: {} < {prev}",
                    r.merit_value
                );
                prev = r.merit_value;
            }
        }
    }

    #[test]
    fn ideal_is_upper_bound() {
        let mm = m();
        let (avg, har) = ideal_performance(&mm);
        for k in 1..mm.len() {
            let ra = best_combination(&mm, k, Merit::Average);
            let rh = best_combination(&mm, k, Merit::HarmonicMean);
            assert!(ra.avg_ipt <= avg + 1e-12);
            assert!(rh.har_ipt <= har + 1e-12);
        }
    }

    #[test]
    fn series_shape() {
        let mm = m();
        let sets = vec![vec![0], vec![0, 1]];
        let s = per_benchmark_series(&mm, &sets);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].len(), 2);
        // Workload b on {a} = 1.0; on {a, b} = 2.0.
        assert!((s[1][0] - 1.0).abs() < 1e-12);
        assert!((s[1][1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn zero_k_panics() {
        combinations(3, 0, |_| {});
    }
}
