//! # xps-communal — communal customization analysis
//!
//! The paper's §5: once every workload has a customized configuration
//! (its *configurational characteristics*), which set of cores should a
//! heterogeneous CMP actually build? This crate implements the entire
//! analysis layer:
//!
//! * [`CrossPerfMatrix`] — the cross-configuration performance matrix
//!   (Table 5) and its percentage-slowdown form (Appendix A);
//! * [`Merit`] and the three figures of merit of §5.2 — average IPT,
//!   harmonic-mean IPT, and contention-weighted harmonic-mean IPT —
//!   with importance weights;
//! * complete search over core combinations ([`best_combination`],
//!   Table 6) and the per-benchmark best-available-core series
//!   (Figure 4);
//! * two-objective generalizations of the above: deterministic
//!   Pareto-front extraction, hypervolume scoring, and the
//!   merit-vs-cost combination front ([`pareto_front`],
//!   [`hypervolume`], [`combination_front`]);
//! * greedy **surrogate assignment** with the three propagation
//!   policies of §5.4 (Figures 6–8), including feedback-surrogating
//!   detection;
//! * classic workload **subsetting** (Euclidean distance over raw
//!   characteristics, agglomerative clustering) and the §5.3
//!   representative-benchmark pitfall experiment;
//! * the §5.5 multithreaded job-submission model: Poisson arrivals,
//!   stall-for-surrogate vs. best-available-core policies, and a
//!   balanced-partition assignment heuristic (BPMST-style).
//!
//! Everything here is pure analysis over a matrix — no simulation — so
//! it can be driven either by the embedded published data
//! (`xps-core::paper`) or by matrices measured with `xps-explore`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combin;
mod matrix;
mod methodology;
mod metrics;
mod pareto;
mod partition;
mod query;
mod schedule;
mod subset;
mod surrogate;

pub use combin::{
    best_combination, combinations, ideal_performance, per_benchmark_series, ComboResult,
};
pub use matrix::CrossPerfMatrix;
pub use methodology::{compare_methodologies, MethodologyComparison};
pub use metrics::Merit;
pub use pareto::{combination_front, hypervolume, pareto_front, ComboParetoEntry, ParetoPoint};
pub use partition::{balanced_partition, BalancedPartition};
pub use query::{
    combination_query, merit_by_name, slowdown_row, QueryError, SlowdownEntry, SlowdownRow,
};
pub use schedule::{simulate_jobs, JobPolicy, ScheduleOptions, ScheduleStats};
pub use subset::{
    cluster, dendrogram, nearest_neighbor, pitfall_experiment, Cluster, Dendrogram, Merge,
    PitfallReport,
};
pub use surrogate::{assign_surrogates, Propagation, SurrogateEdge, Surrogating};
