//! Multithreaded job-submission modeling (paper §5.5).
//!
//! With concurrent jobs, cores contend. The paper sketches two
//! policies — *stall until the assigned surrogate core is free* and
//! *redirect to the most suitable available core* — and argues that
//! under Poisson arrivals with moderate load, a balanced partition of
//! workloads onto cores (its BPMST analogy) remains near-optimal,
//! while burstiness erodes the benefit of heterogeneity. The paper
//! defers quantitative study to future work; this module implements the
//! model it describes so the claim can actually be exercised
//! (`repro schedule`).

use crate::matrix::CrossPerfMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Contention policy when a job's preferred core is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobPolicy {
    /// Queue on the assigned core until it frees up.
    StallForAssigned,
    /// Run on whichever core finishes the job earliest (counting both
    /// queueing and the job's slowdown on that core).
    BestAvailable,
}

/// Options of one scheduling simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOptions {
    /// The cores built (architecture indices into the matrix).
    pub cores: Vec<usize>,
    /// Contention policy.
    pub policy: JobPolicy,
    /// Mean arrival rate, jobs per time unit.
    pub arrival_rate: f64,
    /// Number of jobs to simulate.
    pub jobs: u32,
    /// Burstiness: probability that the next job arrives immediately
    /// (in the same burst) rather than after an exponential gap.
    pub burstiness: f64,
    /// Nominal work per job, in instructions-equivalent units; the
    /// execution time of a job of workload `w` on core `c` is
    /// `work / ipt(w, c)`.
    pub work: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ScheduleOptions {
    /// Reasonable defaults: moderate load, no burstiness.
    pub fn new(cores: Vec<usize>, policy: JobPolicy) -> ScheduleOptions {
        ScheduleOptions {
            cores,
            policy,
            arrival_rate: 1.0,
            jobs: 10_000,
            burstiness: 0.0,
            work: 1.0,
            seed: 42,
        }
    }
}

/// Results of one scheduling simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Mean turnaround (arrival → completion) per job.
    pub avg_turnaround: f64,
    /// Mean pure execution time per job (no queueing).
    pub avg_execution: f64,
    /// Mean queueing delay per job.
    pub avg_wait: f64,
    /// Fraction of jobs that ran on a core other than their best one
    /// (only non-zero under [`JobPolicy::BestAvailable`]).
    pub redirect_rate: f64,
}

/// Simulate `opts.jobs` Poisson job arrivals over the cores and return
/// turnaround statistics.
///
/// Each job is a workload drawn from the matrix in proportion to its
/// importance weight. Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if `opts.cores` is empty, contains an out-of-range index, or
/// `arrival_rate`/`work` are not positive.
pub fn simulate_jobs(m: &CrossPerfMatrix, opts: &ScheduleOptions) -> ScheduleStats {
    assert!(!opts.cores.is_empty(), "need at least one core");
    assert!(
        opts.cores.iter().all(|&c| c < m.len()),
        "core index out of range"
    );
    assert!(opts.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(opts.work > 0.0, "work must be positive");
    assert!(
        (0.0..=1.0).contains(&opts.burstiness),
        "burstiness must be in [0, 1]"
    );

    let _pass = xps_trace::span("communal.schedule");
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let weights = m.weights();
    let wsum: f64 = weights.iter().sum();
    // Each workload's preferred core: best IPT among the built cores.
    let preferred: Vec<usize> = (0..m.len())
        .map(|w| m.best_config_for(w, &opts.cores))
        .collect();

    let mut free_at = vec![0.0f64; opts.cores.len()];
    let mut now = 0.0f64;
    let (mut t_turn, mut t_exec, mut t_wait) = (0.0, 0.0, 0.0);
    let mut redirects = 0u32;

    for _ in 0..opts.jobs {
        // Arrival process: bursty Poisson.
        if rng.gen::<f64>() >= opts.burstiness {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            now += -u.ln() / opts.arrival_rate;
        }
        // Draw the workload by weight.
        let mut pick = rng.gen::<f64>() * wsum;
        let mut w = 0;
        for (i, &wt) in weights.iter().enumerate() {
            if pick < wt {
                w = i;
                break;
            }
            pick -= wt;
            w = i;
        }

        let slot_of = |core: usize| -> usize {
            opts.cores
                .iter()
                .position(|&c| c == core)
                // xps-allow(no-unwrap-in-lib): the preferred index comes from the same combination that built the core list
                .expect("preferred core is among the built cores")
        };
        let (slot, start) = match opts.policy {
            JobPolicy::StallForAssigned => {
                let slot = slot_of(preferred[w]);
                (slot, free_at[slot].max(now))
            }
            JobPolicy::BestAvailable => {
                // Choose the core minimizing completion time.
                let mut best_slot = 0;
                let mut best_done = f64::INFINITY;
                for (slot, &core) in opts.cores.iter().enumerate() {
                    let exec = opts.work / m.ipt(w, core);
                    let done = free_at[slot].max(now) + exec;
                    if done < best_done {
                        best_done = done;
                        best_slot = slot;
                    }
                }
                if opts.cores[best_slot] != preferred[w] {
                    redirects += 1;
                }
                (best_slot, free_at[best_slot].max(now))
            }
        };
        let exec = opts.work / m.ipt(w, opts.cores[slot]);
        let done = start + exec;
        free_at[slot] = done;
        t_exec += exec;
        t_wait += start - now;
        t_turn += done - now;
    }

    let n = f64::from(opts.jobs);
    ScheduleStats {
        avg_turnaround: t_turn / n,
        avg_execution: t_exec / n,
        avg_wait: t_wait / n,
        redirect_rate: f64::from(redirects) / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![2.0, 1.0, 1.0],
                vec![1.0, 2.0, 1.0],
                vec![1.0, 1.0, 2.0],
            ],
        )
        .expect("valid")
    }

    fn opts(policy: JobPolicy) -> ScheduleOptions {
        let mut o = ScheduleOptions::new(vec![0, 1], policy);
        o.jobs = 5000;
        o.arrival_rate = 2.0;
        o
    }

    #[test]
    fn turnaround_decomposes() {
        let s = simulate_jobs(&m(), &opts(JobPolicy::StallForAssigned));
        assert!(
            (s.avg_turnaround - (s.avg_execution + s.avg_wait)).abs() < 1e-9,
            "turnaround = exec + wait"
        );
    }

    #[test]
    fn best_available_never_slower_overall() {
        let stall = simulate_jobs(&m(), &opts(JobPolicy::StallForAssigned));
        let redirect = simulate_jobs(&m(), &opts(JobPolicy::BestAvailable));
        assert!(redirect.avg_turnaround <= stall.avg_turnaround * 1.05);
        assert!(
            redirect.redirect_rate > 0.0,
            "some jobs should redirect under load"
        );
        assert!((stall.redirect_rate).abs() < 1e-12);
    }

    #[test]
    fn light_load_has_little_waiting() {
        let mut o = opts(JobPolicy::StallForAssigned);
        o.arrival_rate = 0.01;
        let s = simulate_jobs(&m(), &o);
        assert!(
            s.avg_wait < 0.05 * s.avg_execution,
            "waits vanish at light load"
        );
    }

    #[test]
    fn burstiness_increases_turnaround() {
        let calm = simulate_jobs(&m(), &opts(JobPolicy::BestAvailable));
        let mut o = opts(JobPolicy::BestAvailable);
        o.burstiness = 0.8;
        let bursty = simulate_jobs(&m(), &o);
        assert!(
            bursty.avg_turnaround > calm.avg_turnaround,
            "bursts queue jobs: {} vs {}",
            bursty.avg_turnaround,
            calm.avg_turnaround
        );
    }

    #[test]
    fn deterministic() {
        let a = simulate_jobs(&m(), &opts(JobPolicy::BestAvailable));
        let b = simulate_jobs(&m(), &opts(JobPolicy::BestAvailable));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_cores_panics() {
        simulate_jobs(
            &m(),
            &ScheduleOptions::new(vec![], JobPolicy::StallForAssigned),
        );
    }
}
