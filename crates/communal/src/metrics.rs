//! Figures of merit for a core combination (paper §5.2).

use crate::matrix::CrossPerfMatrix;
use serde::{Deserialize, Serialize};

/// The three design goals of §5.2, each with its representative figure
/// of merit over a candidate core set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Merit {
    /// Average IPT of each workload on its most suitable available
    /// core: maximizes expected single-job performance for a job drawn
    /// uniformly (or by weight) from the workload set.
    Average,
    /// Harmonic-mean IPT: minimizes total execution time of running
    /// every workload once — the classic single-core research metric.
    HarmonicMean,
    /// Contention-weighted harmonic mean: each workload's IPT on its
    /// best available core is divided by the number of workloads that
    /// share that core before taking the harmonic mean — §5.2's
    /// real-world compromise for concurrent execution.
    ContentionWeightedHarmonicMean,
}

impl Merit {
    /// All merits, in the paper's order of introduction.
    pub const ALL: [Merit; 3] = [
        Merit::HarmonicMean,
        Merit::Average,
        Merit::ContentionWeightedHarmonicMean,
    ];

    /// Short label used in tables (`avg`, `har`, `cw-har`).
    pub fn label(&self) -> &'static str {
        match self {
            Merit::Average => "avg",
            Merit::HarmonicMean => "har",
            Merit::ContentionWeightedHarmonicMean => "cw-har",
        }
    }

    /// Evaluate this merit for the core set `combo` (indices into the
    /// matrix's architectures).
    ///
    /// # Panics
    ///
    /// Panics if `combo` is empty or out of bounds.
    pub fn evaluate(&self, m: &CrossPerfMatrix, combo: &[usize]) -> f64 {
        match self {
            Merit::Average => average_ipt(m, combo),
            Merit::HarmonicMean => harmonic_ipt(m, combo),
            Merit::ContentionWeightedHarmonicMean => cw_harmonic_ipt(m, combo),
        }
    }
}

/// Best-available IPT of every workload over `combo`, with weights.
fn best_ipts(m: &CrossPerfMatrix, combo: &[usize]) -> Vec<f64> {
    (0..m.len())
        .map(|w| m.ipt(w, m.best_config_for(w, combo)))
        .collect()
}

/// Weighted average of each workload's IPT on its best available core.
pub(crate) fn average_ipt(m: &CrossPerfMatrix, combo: &[usize]) -> f64 {
    let ipts = best_ipts(m, combo);
    let wsum: f64 = m.weights().iter().sum();
    ipts.iter()
        .zip(m.weights())
        .map(|(x, w)| x * w)
        .sum::<f64>()
        / wsum
}

/// Weighted harmonic mean of each workload's IPT on its best available
/// core.
pub(crate) fn harmonic_ipt(m: &CrossPerfMatrix, combo: &[usize]) -> f64 {
    let ipts = best_ipts(m, combo);
    let wsum: f64 = m.weights().iter().sum();
    wsum / ipts
        .iter()
        .zip(m.weights())
        .map(|(x, w)| w / x)
        .sum::<f64>()
}

/// Contention-weighted harmonic mean: divide each workload's best IPT
/// by the (weighted) number of workloads assigned to the same core,
/// then take the weighted harmonic mean.
pub(crate) fn cw_harmonic_ipt(m: &CrossPerfMatrix, combo: &[usize]) -> f64 {
    let n = m.len();
    let assignment: Vec<usize> = (0..n).map(|w| m.best_config_for(w, combo)).collect();
    // Weighted share of each core.
    let mut share = vec![0.0f64; m.len()];
    for (w, &core) in assignment.iter().enumerate() {
        share[core] += m.weights()[w];
    }
    let wsum: f64 = m.weights().iter().sum();
    wsum / (0..n)
        .map(|w| {
            let core = assignment[w];
            let contended = m.ipt(w, core) / share[core];
            m.weights()[w] / contended
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![4.0, 2.0, 1.0],
                vec![1.0, 2.0, 1.0],
                vec![1.0, 1.0, 2.0],
            ],
        )
        .expect("valid")
    }

    #[test]
    fn average_single_core() {
        // On core a alone: 4, 1, 1 → avg 2.
        assert!((Merit::Average.evaluate(&m(), &[0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_single_core() {
        // On core a alone: 3 / (1/4 + 1 + 1) = 3/2.25.
        let h = Merit::HarmonicMean.evaluate(&m(), &[0]);
        assert!((h - 3.0 / 2.25).abs() < 1e-12);
    }

    #[test]
    fn harmonic_leq_average() {
        let mm = m();
        for combo in [vec![0], vec![1], vec![0, 1], vec![0, 1, 2]] {
            let a = Merit::Average.evaluate(&mm, &combo);
            let h = Merit::HarmonicMean.evaluate(&mm, &combo);
            assert!(
                h <= a + 1e-12,
                "harmonic ({h}) must not exceed average ({a})"
            );
        }
    }

    #[test]
    fn contention_divides_shares() {
        // Two cores {a, b}: workload a→a, b→b, c→b (1 = 1 tie → lower
        // index wins... c on a = 1, on b = 1; tie goes to a). So a
        // hosts {a, c}, b hosts {b}.
        let mm = m();
        let cw = Merit::ContentionWeightedHarmonicMean.evaluate(&mm, &[0, 1]);
        // shares: a = 2, b = 1 → contended IPTs: 4/2=2, 2/1=2, 1/2=0.5.
        let expect = 3.0 / (1.0 / 2.0 + 1.0 / 2.0 + 1.0 / 0.5);
        assert!((cw - expect).abs() < 1e-12, "{cw} vs {expect}");
    }

    #[test]
    fn full_set_contention_is_ideal_shares() {
        // With all cores available, every workload gets its own core:
        // shares are 1 and cw-har equals the plain harmonic mean.
        let mm = m();
        let cw = Merit::ContentionWeightedHarmonicMean.evaluate(&mm, &[0, 1, 2]);
        let h = Merit::HarmonicMean.evaluate(&mm, &[0, 1, 2]);
        assert!((cw - h).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_metrics() {
        let mm = m().with_weights(vec![10.0, 1.0, 1.0]).expect("valid");
        // Heavily weighting workload a makes core a's average dominate.
        let a0 = Merit::Average.evaluate(&mm, &[0]);
        let a1 = Merit::Average.evaluate(&mm, &[1]);
        assert!(a0 > a1);
    }

    #[test]
    fn labels() {
        assert_eq!(Merit::Average.label(), "avg");
        assert_eq!(Merit::HarmonicMean.label(), "har");
        assert_eq!(Merit::ContentionWeightedHarmonicMean.label(), "cw-har");
    }
}
