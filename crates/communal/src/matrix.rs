//! The cross-configuration performance matrix (paper Table 5 /
//! Appendix A).

use serde::{Deserialize, Serialize};

/// A square cross-configuration performance matrix: entry `(w, c)` is
/// the IPT of workload `w` executed on the customized architecture of
/// workload `c`.
///
/// Rows and columns share the same name list (each workload contributes
/// one customized architecture), exactly like the paper's Table 5.
/// Importance weights default to 1 for every workload (the paper's main
/// results assume equal weights; §5.4 discusses non-uniform ones).
///
/// # Example
///
/// ```
/// use xps_communal::CrossPerfMatrix;
///
/// let m = CrossPerfMatrix::new(
///     vec!["a".into(), "b".into()],
///     vec![vec![2.0, 1.0], vec![0.5, 1.5]],
/// ).expect("valid matrix");
/// assert_eq!(m.len(), 2);
/// assert!((m.slowdown(0, 1) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossPerfMatrix {
    names: Vec<String>,
    /// ipt[workload][config]
    ipt: Vec<Vec<f64>>,
    weights: Vec<f64>,
}

impl CrossPerfMatrix {
    /// Build a matrix from names and rows (`ipt[workload][config]`).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not square over the name
    /// list, empty, or contains non-positive / non-finite entries.
    pub fn new(names: Vec<String>, ipt: Vec<Vec<f64>>) -> Result<CrossPerfMatrix, String> {
        let n = names.len();
        if n == 0 {
            return Err("matrix must have at least one workload".to_string());
        }
        if ipt.len() != n {
            return Err(format!("expected {n} rows, got {}", ipt.len()));
        }
        for (i, row) in ipt.iter().enumerate() {
            if row.len() != n {
                return Err(format!(
                    "row {} ({}) has {} entries, expected {n}",
                    i,
                    names[i],
                    row.len()
                ));
            }
            for (j, &v) in row.iter().enumerate() {
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "IPT of {} on {} must be positive and finite, got {v}",
                        names[i], names[j]
                    ));
                }
            }
        }
        let weights = vec![1.0; n];
        Ok(CrossPerfMatrix {
            names,
            ipt,
            weights,
        })
    }

    /// Build a square matrix by calling `f(workload, config)` for every
    /// cell, row-major. Convenient when the cells were measured
    /// elsewhere (e.g. by a parallel fan-out that produced a flat
    /// result vector) and just need assembling with validation.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as
    /// [`CrossPerfMatrix::new`].
    pub fn from_fn(
        names: Vec<String>,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<CrossPerfMatrix, String> {
        let n = names.len();
        let ipt = (0..n).map(|w| (0..n).map(|c| f(w, c)).collect()).collect();
        CrossPerfMatrix::new(names, ipt)
    }

    /// Replace the importance weights (must be positive, one per
    /// workload).
    ///
    /// # Errors
    ///
    /// Returns an error on length mismatch or non-positive weights.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Result<CrossPerfMatrix, String> {
        if weights.len() != self.names.len() {
            return Err(format!(
                "expected {} weights, got {}",
                self.names.len(),
                weights.len()
            ));
        }
        if let Some(w) = weights.iter().find(|w| !(w.is_finite() && **w > 0.0)) {
            return Err(format!("weights must be positive and finite, got {w}"));
        }
        self.weights = weights;
        Ok(self)
    }

    /// Number of workloads (= number of architectures).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the matrix is empty (never constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Workload / architecture names, in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Importance weights, in matrix order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Index of a workload by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// IPT of workload `w` on architecture `c`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn ipt(&self, w: usize, c: usize) -> f64 {
        self.ipt[w][c]
    }

    /// Fractional slowdown of workload `w` on architecture `c` versus
    /// its own architecture: `1 − ipt(w, c) / ipt(w, w)` (Appendix A,
    /// as a fraction rather than a percentage).
    pub fn slowdown(&self, w: usize, c: usize) -> f64 {
        1.0 - self.ipt[w][c] / self.ipt[w][w]
    }

    /// The full slowdown matrix, same layout as `ipt`.
    pub fn slowdown_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.len())
            .map(|w| (0..self.len()).map(|c| self.slowdown(w, c)).collect())
            .collect()
    }

    /// The architecture in `allowed` on which workload `w` performs
    /// best (ties broken toward the lower index).
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty or contains an out-of-bounds index.
    pub fn best_config_for(&self, w: usize, allowed: &[usize]) -> usize {
        assert!(!allowed.is_empty(), "need at least one architecture");
        let mut best = allowed[0];
        for &c in &allowed[1..] {
            if self.ipt[w][c] > self.ipt[w][best] {
                best = c;
            }
        }
        best
    }

    /// True if every workload performs at least as well on its own
    /// architecture as on any other (the paper's cross-seeding rule
    /// guarantees this by construction).
    pub fn is_diagonal_dominant(&self) -> bool {
        (0..self.len()).all(|w| (0..self.len()).all(|c| self.ipt[w][w] >= self.ipt[w][c]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![2.0, 1.0, 1.5],
                vec![0.5, 1.5, 1.2],
                vec![0.8, 0.9, 1.0],
            ],
        )
        .expect("valid")
    }

    #[test]
    fn construction_validates_shape() {
        assert!(CrossPerfMatrix::new(vec![], vec![]).is_err());
        assert!(CrossPerfMatrix::new(vec!["a".into()], vec![vec![1.0, 2.0]]).is_err());
        assert!(CrossPerfMatrix::new(vec!["a".into()], vec![vec![-1.0]]).is_err());
        assert!(CrossPerfMatrix::new(vec!["a".into()], vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    fn slowdowns() {
        let m = sample();
        assert!((m.slowdown(0, 0)).abs() < 1e-12);
        assert!((m.slowdown(0, 1) - 0.5).abs() < 1e-12);
        assert!((m.slowdown(1, 0) - (1.0 - 0.5 / 1.5)).abs() < 1e-12);
    }

    #[test]
    fn best_config_selection() {
        let m = sample();
        assert_eq!(m.best_config_for(0, &[0, 1, 2]), 0);
        assert_eq!(m.best_config_for(0, &[1, 2]), 2);
        assert_eq!(m.best_config_for(2, &[0, 1]), 1);
    }

    #[test]
    fn diagonal_dominance() {
        assert!(sample().is_diagonal_dominant());
        let m = CrossPerfMatrix::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![0.5, 1.0]],
        )
        .expect("valid");
        assert!(!m.is_diagonal_dominant());
    }

    #[test]
    fn weights_validated() {
        let m = sample();
        assert!(m.clone().with_weights(vec![1.0, 2.0]).is_err());
        assert!(m.clone().with_weights(vec![1.0, 0.0, 1.0]).is_err());
        let w = m.with_weights(vec![1.0, 2.0, 3.0]).expect("valid");
        assert_eq!(w.weights(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_matches_new() {
        let rows = [
            vec![2.0, 1.0, 1.5],
            vec![0.5, 1.5, 1.2],
            vec![0.8, 0.9, 1.0],
        ];
        let names: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let m = CrossPerfMatrix::from_fn(names, |w, c| rows[w][c]).expect("valid");
        assert_eq!(m, sample());
        assert!(CrossPerfMatrix::from_fn(vec!["a".into()], |_, _| f64::NAN).is_err());
        assert!(CrossPerfMatrix::from_fn(vec![], |_, _| 1.0).is_err());
    }

    #[test]
    fn index_lookup() {
        let m = sample();
        assert_eq!(m.index_of("b"), Some(1));
        assert_eq!(m.index_of("zzz"), None);
    }
}
