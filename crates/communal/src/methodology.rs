//! The paper's Figure 3: two routes to the optimal core combination.
//!
//! * **(a) subset first** — cluster workloads by raw characteristics,
//!   keep one representative per cluster, customize cores only for the
//!   representatives, and exhaustively search combinations of *those*
//!   architectures.
//! * **(b) customize first** — customize a core for *every* workload
//!   (configurational characterization), then reduce the set of
//!   architectures by complete search.
//!
//! The paper's thesis is that (a) — the cheap, conventional route —
//! can exclude exactly the architectures the optimal combination
//! needs. This module makes the two routes directly comparable on any
//! cross-performance matrix: both are finally scored on the *full*
//! workload set, because that is what the built CMP will actually run.

use crate::combin::best_combination;
use crate::matrix::CrossPerfMatrix;
use crate::metrics::Merit;
use crate::subset::cluster;
use serde::{Deserialize, Serialize};

/// The outcome of running both Figure 3 routes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodologyComparison {
    /// Representatives chosen by clustering (workload names).
    pub representatives: Vec<String>,
    /// Route (a)'s chosen core set (names).
    pub subset_first_choice: Vec<String>,
    /// Route (a)'s merit on the full workload set.
    pub subset_first_value: f64,
    /// Route (b)'s chosen core set (names).
    pub customize_first_choice: Vec<String>,
    /// Route (b)'s merit on the full workload set (the optimum).
    pub customize_first_value: f64,
    /// Fractional loss of route (a) versus route (b); non-negative.
    pub subsetting_loss: f64,
}

/// The medoid of a cluster: the member minimizing the summed Euclidean
/// distance to the others.
fn medoid(points: &[Vec<f64>], members: &[usize]) -> usize {
    assert!(!members.is_empty(), "cluster cannot be empty");
    *members
        .iter()
        .min_by(|&&a, &&b| {
            let cost = |x: usize| -> f64 {
                members
                    .iter()
                    .map(|&y| {
                        points[x]
                            .iter()
                            .zip(&points[y])
                            .map(|(p, q)| (p - q) * (p - q))
                            .sum::<f64>()
                            .sqrt()
                    })
                    .sum()
            };
            // xps-allow(no-unwrap-in-lib): slowdown distances are ratios of positive finite IPTs; NaN cannot reach this comparison
            cost(a).partial_cmp(&cost(b)).expect("distances are finite")
        })
        // xps-allow(no-unwrap-in-lib): clusters are built by assignment and never empty when scored
        .expect("cluster is non-empty")
}

/// Run both Figure 3 routes.
///
/// `characteristics` are the raw (microarchitecture-independent)
/// vectors, one per workload in matrix order; `representatives` is the
/// number of clusters route (a) reduces to; `cores` is the number of
/// cores in the CMP.
///
/// # Panics
///
/// Panics if lengths mismatch, or if `cores > representatives` (route
/// (a) could not even fill the CMP), or counts are out of range.
pub fn compare_methodologies(
    m: &CrossPerfMatrix,
    characteristics: &[Vec<f64>],
    representatives: usize,
    cores: usize,
    merit: Merit,
) -> MethodologyComparison {
    assert_eq!(
        characteristics.len(),
        m.len(),
        "one characteristic vector per workload"
    );
    assert!(
        (1..=m.len()).contains(&representatives),
        "representative count out of range"
    );
    assert!(
        (1..=representatives).contains(&cores),
        "cores must be in 1..=representatives"
    );

    // Route (a): cluster raw characteristics, keep medoids, search only
    // over their architectures.
    let clusters = cluster(characteristics, representatives);
    let reps: Vec<usize> = clusters
        .iter()
        .map(|c| medoid(characteristics, &c.members))
        .collect();
    let mut best_subset: Option<(Vec<usize>, f64)> = None;
    crate::combin::combinations(reps.len(), cores, |combo| {
        let cores_full: Vec<usize> = combo.iter().map(|&i| reps[i]).collect();
        // Route (a) *selects* using only the representatives' rows (it
        // never simulated the dropped workloads)...
        let value = merit_on_rows(m, &cores_full, &reps, merit);
        if best_subset
            .as_ref()
            .map(|(_, bv)| value > *bv)
            .unwrap_or(true)
        {
            best_subset = Some((cores_full, value));
        }
    });
    // xps-allow(no-unwrap-in-lib): the subset enumeration always yields at least one candidate for validated core counts
    let (subset_cores, _) = best_subset.expect("at least one combination");
    // ...but is *scored* on the full set, which is what ships.
    let subset_first_value = merit.evaluate(m, &subset_cores);

    // Route (b): complete search over all customized architectures.
    let full = best_combination(m, cores, merit);

    MethodologyComparison {
        representatives: reps.iter().map(|&i| m.names()[i].clone()).collect(),
        subset_first_choice: subset_cores.iter().map(|&i| m.names()[i].clone()).collect(),
        subset_first_value,
        customize_first_choice: full.names.clone(),
        customize_first_value: full.merit_value,
        subsetting_loss: 1.0 - subset_first_value / full.merit_value,
    }
}

/// Evaluate `merit` counting only the given workload rows (the
/// representatives' view of the world).
fn merit_on_rows(m: &CrossPerfMatrix, combo: &[usize], rows: &[usize], merit: Merit) -> f64 {
    // Build a reduced matrix over `rows` x all architectures in
    // `combo`; simplest correct construction: a rows x rows matrix
    // restricted to the representative workloads with the full
    // architecture set retained via direct evaluation.
    let ipts: Vec<f64> = rows
        .iter()
        .map(|&w| m.ipt(w, m.best_config_for(w, combo)))
        .collect();
    let ws: Vec<f64> = rows.iter().map(|&w| m.weights()[w]).collect();
    let wsum: f64 = ws.iter().sum();
    match merit {
        Merit::Average => ipts.iter().zip(&ws).map(|(x, w)| x * w).sum::<f64>() / wsum,
        Merit::HarmonicMean | Merit::ContentionWeightedHarmonicMean => {
            // Representatives rarely contend with themselves; route (a)
            // uses the plain harmonic mean for both harmonic merits.
            wsum / ipts.iter().zip(&ws).map(|(x, w)| w / x).sum::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Workloads a/b are raw-twins with *different* best architectures
    /// (the bzip/gzip situation); c is distinct; d is an outlier.
    fn m() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                vec![2.00, 1.30, 1.60, 0.90],
                vec![1.35, 2.00, 1.50, 0.80],
                vec![1.20, 1.10, 2.00, 0.70],
                vec![0.30, 0.25, 0.40, 1.00],
            ],
        )
        .expect("valid")
    }

    /// Raw characteristics: a and b indistinguishable, c and d apart.
    fn chars() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 1.0],
            vec![1.05, 1.0],
            vec![5.0, 5.0],
            vec![9.0, 1.0],
        ]
    }

    #[test]
    fn subsetting_can_lose() {
        // Reduce to 3 representatives (a/b collapse), build 2 cores.
        let r = compare_methodologies(&m(), &chars(), 3, 2, Merit::HarmonicMean);
        assert_eq!(r.representatives.len(), 3);
        assert!(
            r.subsetting_loss >= 0.0,
            "route (b) is optimal by construction: {}",
            r.subsetting_loss
        );
        assert!(
            !(r.representatives.contains(&"a".to_string())
                && r.representatives.contains(&"b".to_string())),
            "the twins must have collapsed: {:?}",
            r.representatives
        );
    }

    #[test]
    fn no_reduction_no_loss() {
        let r = compare_methodologies(&m(), &chars(), 4, 2, Merit::HarmonicMean);
        assert!(r.subsetting_loss.abs() < 1e-9, "full set loses nothing");
        assert_eq!(r.subset_first_choice, r.customize_first_choice);
    }

    #[test]
    fn average_merit_also_supported() {
        let r = compare_methodologies(&m(), &chars(), 3, 2, Merit::Average);
        assert!(r.customize_first_value > 0.0);
        assert!(r.subset_first_value <= r.customize_first_value + 1e-12);
    }

    #[test]
    #[should_panic(expected = "cores must be in")]
    fn too_many_cores_panics() {
        compare_methodologies(&m(), &chars(), 2, 3, Merit::Average);
    }

    #[test]
    #[should_panic(expected = "one characteristic vector")]
    fn mismatched_vectors_panic() {
        compare_methodologies(&m(), &chars()[..2], 2, 1, Merit::Average);
    }
}
