//! Name-keyed query entry points over a cross-performance matrix.
//!
//! The analysis functions in this crate are index-based; a service
//! endpoint (or any caller holding user-provided strings) wants to ask
//! by *name* — "the slowdown row of `mcf`", "the best 4-core
//! combination under the harmonic mean" — and get typed, actionable
//! errors when the name or arity is wrong. These wrappers are that
//! layer; `xps-serve`'s communal endpoints call straight into them.

use crate::combin::{best_combination, ComboResult};
use crate::matrix::CrossPerfMatrix;
use crate::metrics::Merit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything that can go wrong resolving a name-keyed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The named workload is not a row of the matrix.
    UnknownWorkload {
        /// The name that failed to resolve.
        workload: String,
        /// The names that would have resolved.
        known: Vec<String>,
    },
    /// The merit name matches none of the §5.2 figures of merit.
    UnknownMerit(String),
    /// The requested combination size is outside `1..=n`.
    BadCoreCount {
        /// Requested combination size.
        k: usize,
        /// Number of architectures in the matrix.
        n: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownWorkload { workload, known } => write!(
                f,
                "unknown workload `{workload}`; known: {}",
                known.join(", ")
            ),
            QueryError::UnknownMerit(name) => write!(
                f,
                "unknown merit `{name}`; known: avg, har, cw-har (aliases: average, \
                 harmonic, contention)"
            ),
            QueryError::BadCoreCount { k, n } => {
                write!(f, "core count {k} outside 1..={n}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Resolve a figure of merit from its table label or a spelled-out
/// alias (case-insensitive): `avg`/`average`, `har`/`harmonic`,
/// `cw-har`/`contention`.
///
/// # Errors
///
/// Returns [`QueryError::UnknownMerit`] listing the accepted names.
pub fn merit_by_name(name: &str) -> Result<Merit, QueryError> {
    match name.to_ascii_lowercase().as_str() {
        "avg" | "average" => Ok(Merit::Average),
        "har" | "harmonic" | "harmonic-mean" => Ok(Merit::HarmonicMean),
        "cw-har" | "contention" | "contention-weighted" => {
            Ok(Merit::ContentionWeightedHarmonicMean)
        }
        _ => Err(QueryError::UnknownMerit(name.to_string())),
    }
}

/// One cell of a workload's slowdown row: how the workload fares on
/// one (foreign or own) customized architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowdownEntry {
    /// The architecture (named after the workload it was customized
    /// for).
    pub config: String,
    /// The workload's IPT on that architecture.
    pub ipt: f64,
    /// Percentage of the workload's own-architecture performance lost
    /// (0 on the diagonal; the Appendix A presentation).
    pub slowdown_pct: f64,
}

/// A workload's full row of the percentage-slowdown matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowdownRow {
    /// The workload the row describes.
    pub workload: String,
    /// One entry per architecture, in matrix (input) order.
    pub entries: Vec<SlowdownEntry>,
}

/// The named workload's slowdown row (Appendix A): its IPT and
/// percentage slowdown on every customized architecture.
///
/// # Errors
///
/// Returns [`QueryError::UnknownWorkload`] when the name is not a row.
pub fn slowdown_row(m: &CrossPerfMatrix, workload: &str) -> Result<SlowdownRow, QueryError> {
    let w = m
        .index_of(workload)
        .ok_or_else(|| QueryError::UnknownWorkload {
            workload: workload.to_string(),
            known: m.names().to_vec(),
        })?;
    let entries = (0..m.len())
        .map(|c| SlowdownEntry {
            config: m.names()[c].clone(),
            ipt: m.ipt(w, c),
            slowdown_pct: 100.0 * m.slowdown(w, c),
        })
        .collect();
    Ok(SlowdownRow {
        workload: workload.to_string(),
        entries,
    })
}

/// Complete-search best `k`-core combination under the merit named
/// `merit` (see [`merit_by_name`]) — the Table 6 query, by name.
///
/// # Errors
///
/// Returns [`QueryError::BadCoreCount`] for `k` outside `1..=n` and
/// [`QueryError::UnknownMerit`] for an unrecognized merit name.
pub fn combination_query(
    m: &CrossPerfMatrix,
    k: usize,
    merit: &str,
) -> Result<ComboResult, QueryError> {
    let merit = merit_by_name(merit)?;
    if k == 0 || k > m.len() {
        return Err(QueryError::BadCoreCount { k, n: m.len() });
    }
    Ok(best_combination(m, k, merit))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![2.0, 1.0, 1.5],
                vec![0.5, 1.5, 0.75],
                vec![1.0, 1.2, 2.5],
            ],
        )
        .expect("valid matrix")
    }

    #[test]
    fn merit_names_resolve_case_insensitively() {
        assert_eq!(merit_by_name("AVG").unwrap(), Merit::Average);
        assert_eq!(merit_by_name("harmonic").unwrap(), Merit::HarmonicMean);
        assert_eq!(
            merit_by_name("cw-har").unwrap(),
            Merit::ContentionWeightedHarmonicMean
        );
        let e = merit_by_name("geometric").expect_err("unknown");
        assert!(e.to_string().contains("geometric") && e.to_string().contains("cw-har"));
    }

    #[test]
    fn slowdown_row_matches_matrix_cells() {
        let m = matrix();
        let row = slowdown_row(&m, "a").expect("a exists");
        assert_eq!(row.workload, "a");
        assert_eq!(row.entries.len(), 3);
        assert_eq!(row.entries[0].config, "a");
        assert!((row.entries[0].slowdown_pct - 0.0).abs() < 1e-12);
        assert!((row.entries[1].slowdown_pct - 50.0).abs() < 1e-12);
        assert!((row.entries[1].ipt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_workload_lists_known_names() {
        let e = slowdown_row(&matrix(), "zzz").expect_err("unknown");
        let msg = e.to_string();
        assert!(msg.contains("zzz") && msg.contains("a, b, c"));
    }

    #[test]
    fn combination_query_validates_and_searches() {
        let m = matrix();
        let combo = combination_query(&m, 2, "har").expect("valid query");
        assert_eq!(combo.cores.len(), 2);
        assert_eq!(combo.names.len(), 2);
        assert!(combo.merit_value > 0.0);
        assert!(matches!(
            combination_query(&m, 0, "avg"),
            Err(QueryError::BadCoreCount { k: 0, n: 3 })
        ));
        assert!(matches!(
            combination_query(&m, 4, "avg"),
            Err(QueryError::BadCoreCount { k: 4, n: 3 })
        ));
        assert!(matches!(
            combination_query(&m, 2, "nope"),
            Err(QueryError::UnknownMerit(_))
        ));
    }
}
