//! Greedy surrogate assignment (paper §5.4, Figures 5–8).
//!
//! A *surrogate* assignment gives workload `w` the customized
//! architecture of another workload `h` (an edge `h → w` in the
//! surrogating graph). The greedy procedure repeatedly commits the
//! legal link with the smallest cross-configuration slowdown. What is
//! *legal* depends on the propagation policy:
//!
//! * [`Propagation::None`] — a workload that hosts dependents may not
//!   itself be surrogated, and a surrogated workload's architecture may
//!   not host others. Assignment stalls once only mutually-unsuitable
//!   workloads remain.
//! * [`Propagation::Forward`] — a host may later be surrogated itself
//!   (its dependents follow), but a surrogated workload's architecture
//!   never hosts.
//! * [`Propagation::ForwardBackward`] — both relaxations; this is the
//!   only mode in which *feedback surrogating* can arise (two
//!   workloads surrogating each other, closing a cycle that stops
//!   further reduction — the paper observes it for gzip↔parser and
//!   twolf↔vpr).

use crate::matrix::CrossPerfMatrix;
use serde::{Deserialize, Serialize};

/// Propagation policy for greedy surrogate assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Propagation {
    /// No propagation: hosts stay hosts, dependents stay leaves.
    None,
    /// Forward propagation only.
    Forward,
    /// Forward and backward propagation.
    ForwardBackward,
}

/// One committed surrogate link: `dependent` runs on (the effective
/// architecture of) `host`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateEdge {
    /// The workload whose architecture is adopted.
    pub host: usize,
    /// The workload giving up its own architecture.
    pub dependent: usize,
    /// 1-based assignment order (the edge labels of Figures 6–8).
    pub order: u32,
    /// The cross-configuration slowdown that motivated the link.
    pub slowdown: f64,
}

/// The outcome of a greedy surrogate assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Surrogating {
    /// Committed links in assignment order.
    pub edges: Vec<SurrogateEdge>,
    /// Effective architecture of each workload (index into the
    /// matrix).
    pub assignment: Vec<usize>,
    /// The distinct architectures that survive (sorted ascending).
    pub final_architectures: Vec<usize>,
    /// Pairs that ended up surrogating each other (feedback
    /// surrogating); empty unless both propagation directions are
    /// allowed.
    pub feedback_pairs: Vec<(usize, usize)>,
}

impl Surrogating {
    /// Weighted harmonic-mean IPT under the fixed (surrogate-chosen)
    /// assignment — unlike [`crate::Merit`], workloads do not get to
    /// pick their best core; they run where the greedy put them.
    pub fn harmonic_ipt(&self, m: &CrossPerfMatrix) -> f64 {
        let wsum: f64 = m.weights().iter().sum();
        wsum / self
            .assignment
            .iter()
            .enumerate()
            .map(|(w, &c)| m.weights()[w] / m.ipt(w, c))
            .sum::<f64>()
    }

    /// Weighted average IPT under the fixed assignment.
    pub fn average_ipt(&self, m: &CrossPerfMatrix) -> f64 {
        let wsum: f64 = m.weights().iter().sum();
        self.assignment
            .iter()
            .enumerate()
            .map(|(w, &c)| m.weights()[w] * m.ipt(w, c))
            .sum::<f64>()
            / wsum
    }

    /// Mean per-benchmark slowdown (fractional) versus each workload's
    /// own architecture — the "average slowdown across all benchmarks
    /// compared to the ideal case" of §5.4.1.
    pub fn average_slowdown(&self, m: &CrossPerfMatrix) -> f64 {
        self.assignment
            .iter()
            .enumerate()
            .map(|(w, &c)| m.slowdown(w, c))
            .sum::<f64>()
            / m.len() as f64
    }

    /// Members of each surviving architecture's group, keyed in
    /// `final_architectures` order.
    pub fn groups(&self) -> Vec<(usize, Vec<usize>)> {
        self.final_architectures
            .iter()
            .map(|&root| {
                let members = self
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c == root)
                    .map(|(w, _)| w)
                    .collect();
                (root, members)
            })
            .collect()
    }
}

/// Resolve the effective architecture of `w` by following parents;
/// cycles resolve to the host of the latest-order edge inside the
/// cycle (the paper's Figure 7 heads).
fn resolve(w: usize, parent: &[Option<usize>], edge_order: &[Option<u32>]) -> usize {
    let mut seen = vec![false; parent.len()];
    let mut cur = w;
    loop {
        if seen[cur] {
            // Cycle: find its member whose *incoming* edge (as host)
            // has the highest order — i.e. the latest edge points at
            // the head.
            let mut cycle = Vec::new();
            let mut c = cur;
            loop {
                cycle.push(c);
                // xps-allow(no-unwrap-in-lib): a cycle in the preference graph means every member has a parent edge
                c = parent[c].expect("cycle members all have parents");
                if c == cur {
                    break;
                }
            }
            // The head is the parent (host) named by the
            // highest-order edge among cycle members.
            let latest = cycle
                .iter()
                // xps-allow(no-unwrap-in-lib): cycle membership implies the node's edge was recorded with an order
                .max_by_key(|&&x| edge_order[x].expect("cycle members have edges"))
                .copied()
                // xps-allow(no-unwrap-in-lib): a detected cycle contains at least its entry node
                .expect("cycle is non-empty");
            // xps-allow(no-unwrap-in-lib): a cycle in the preference graph means every member has a parent edge
            return parent[latest].expect("cycle member has a parent");
        }
        seen[cur] = true;
        match parent[cur] {
            Some(p) => cur = p,
            None => return cur,
        }
    }
}

/// Run the greedy surrogate assignment over the slowdown matrix of
/// `m`, stopping when the number of surviving architectures reaches
/// `target` (or when no legal link remains).
///
/// # Panics
///
/// Panics if `target` is zero or exceeds the matrix size.
pub fn assign_surrogates(m: &CrossPerfMatrix, mode: Propagation, target: usize) -> Surrogating {
    let n = m.len();
    assert!((1..=n).contains(&target), "target must be in 1..=n");
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut edge_order: Vec<Option<u32>> = vec![None; n];
    let mut children = vec![0u32; n];
    let mut edges = Vec::new();
    let mut order = 0u32;

    loop {
        let assignment: Vec<usize> = (0..n).map(|w| resolve(w, &parent, &edge_order)).collect();
        let mut roots: Vec<usize> = assignment.clone();
        roots.sort_unstable();
        roots.dedup();
        if roots.len() <= target {
            break;
        }
        // Find the legal link with the minimum importance-weighted
        // slowdown (§5.4: "the slowdowns due to surrogating must be
        // weighed by the importance weight of corresponding
        // workloads"; with the paper's equal weights this reduces to
        // the raw slowdown).
        let mut best: Option<(usize, usize, f64, f64)> = None;
        for w in 0..n {
            if parent[w].is_some() {
                continue;
            }
            if mode == Propagation::None && children[w] > 0 {
                continue;
            }
            // Indexing several parallel structures (parent, matrix) by
            // host id — an iterator chain here would hide the pairing.
            #[allow(clippy::needless_range_loop)]
            for h in 0..n {
                if h == w {
                    continue;
                }
                if mode != Propagation::ForwardBackward && parent[h].is_some() {
                    continue;
                }
                let s = m.slowdown(w, h);
                let cost = m.weights()[w] * s;
                if best.map(|(_, _, _, bc)| cost < bc).unwrap_or(true) {
                    best = Some((w, h, s, cost));
                }
            }
        }
        let best = best.map(|(w, h, s, _)| (w, h, s));
        let Some((w, h, s)) = best else { break };
        order += 1;
        parent[w] = Some(h);
        edge_order[w] = Some(order);
        children[h] += 1;
        edges.push(SurrogateEdge {
            host: h,
            dependent: w,
            order,
            slowdown: s,
        });
    }

    let assignment: Vec<usize> = (0..n).map(|w| resolve(w, &parent, &edge_order)).collect();
    let mut final_architectures: Vec<usize> = assignment.clone();
    final_architectures.sort_unstable();
    final_architectures.dedup();
    // Feedback pairs: two workloads that are each other's parent.
    let mut feedback_pairs = Vec::new();
    for w in 0..n {
        if let Some(p) = parent[w] {
            if p > w && parent[p] == Some(w) {
                feedback_pairs.push((w, p));
            }
        }
    }
    Surrogating {
        edges,
        assignment,
        final_architectures,
        feedback_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four workloads: a and b are near-twins, c is a generalist, d is
    /// an outlier that only its own architecture serves well.
    fn m() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                vec![2.00, 1.95, 1.60, 0.90],
                vec![1.90, 2.00, 1.50, 0.80],
                vec![1.20, 1.10, 2.00, 0.70],
                vec![0.40, 0.30, 0.50, 1.00],
            ],
        )
        .expect("valid")
    }

    #[test]
    fn greedy_picks_smallest_slowdown_first() {
        let s = assign_surrogates(&m(), Propagation::None, 1);
        // Smallest slowdown is a on b's arch: 1 - 1.95/2.00 = 2.5%.
        assert_eq!(s.edges[0].dependent, 0);
        assert_eq!(s.edges[0].host, 1);
        assert!((s.edges[0].slowdown - 0.025).abs() < 1e-12);
    }

    #[test]
    fn no_propagation_blocks_hosts_and_dependents() {
        let s = assign_surrogates(&m(), Propagation::None, 1);
        for e in &s.edges {
            // A dependent never appears as a host and vice versa.
            assert!(
                !s.edges.iter().any(|other| other.host == e.dependent),
                "dependent {} must not host",
                e.dependent
            );
        }
    }

    #[test]
    fn assignment_respects_edges() {
        let s = assign_surrogates(&m(), Propagation::Forward, 2);
        for e in &s.edges {
            // The dependent's effective architecture is its host's
            // effective architecture.
            assert_eq!(s.assignment[e.dependent], s.assignment[e.host]);
        }
        assert_eq!(s.final_architectures.len(), 2);
    }

    #[test]
    fn forward_backward_can_feedback() {
        // With two near-twins, full propagation pairs them both ways.
        let s = assign_surrogates(&m(), Propagation::ForwardBackward, 1);
        // a↔b is a plausible feedback pair; at minimum the machinery
        // must terminate and produce a consistent assignment.
        assert_eq!(s.assignment.len(), 4);
        for &arch in &s.assignment {
            assert!(s.final_architectures.contains(&arch));
        }
    }

    #[test]
    fn fixed_assignment_metrics() {
        let s = assign_surrogates(&m(), Propagation::None, 1);
        let mm = m();
        let har = s.harmonic_ipt(&mm);
        let avg = s.average_ipt(&mm);
        assert!(har > 0.0 && avg >= har);
        assert!(s.average_slowdown(&mm) >= 0.0);
    }

    #[test]
    fn groups_partition_workloads() {
        let mm = m();
        for mode in [
            Propagation::None,
            Propagation::Forward,
            Propagation::ForwardBackward,
        ] {
            let s = assign_surrogates(&mm, mode, 2);
            let total: usize = s.groups().iter().map(|(_, g)| g.len()).sum();
            assert_eq!(total, mm.len(), "{mode:?} groups must partition");
        }
    }

    #[test]
    fn importance_weights_steer_the_greedy() {
        // Give workload d (the outlier) an enormous weight: its links
        // become so costly that it survives as its own architecture
        // even under full propagation to two survivors.
        let mm = m()
            .with_weights(vec![1.0, 1.0, 1.0, 100.0])
            .expect("valid weights");
        let s = assign_surrogates(&mm, Propagation::Forward, 2);
        assert!(
            s.final_architectures.contains(&3),
            "heavily weighted d must keep its core: {:?}",
            s.final_architectures
        );
    }

    #[test]
    fn target_one_single_architecture_with_forward() {
        let s = assign_surrogates(&m(), Propagation::Forward, 1);
        assert_eq!(s.final_architectures.len(), 1);
    }

    #[test]
    #[should_panic(expected = "target must be in 1..=n")]
    fn zero_target_panics() {
        assign_surrogates(&m(), Propagation::None, 0);
    }
}
