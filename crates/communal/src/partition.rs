//! Balanced partitioning of workloads onto cores (paper §5.5).
//!
//! When jobs run concurrently and stall for their assigned core, the
//! paper notes the assignment problem resembles *Balanced Partitioning
//! of Minimum Spanning Trees* (BPMST): minimize the slowdown of each
//! workload on its assigned core while keeping the aggregate importance
//! weight per core balanced, so no core becomes a hot spot. This
//! module implements that assignment as a greedy construction plus a
//! local-search refinement — the practical analogue of the BPMST
//! heuristics the paper cites.

use crate::matrix::CrossPerfMatrix;
use serde::{Deserialize, Serialize};

/// A balanced assignment of workloads to cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalancedPartition {
    /// For each workload (matrix order), the assigned core
    /// (architecture index; always one of the requested cores).
    pub assignment: Vec<usize>,
    /// Aggregate importance weight per requested core, in the order
    /// the cores were given.
    pub load: Vec<f64>,
    /// Mean fractional slowdown of workloads on their assigned cores.
    pub average_slowdown: f64,
    /// Largest-to-smallest core load ratio (1.0 = perfectly balanced).
    pub imbalance: f64,
}

fn imbalance_of(load: &[f64]) -> f64 {
    let max = load.iter().cloned().fold(f64::MIN, f64::max);
    let min = load.iter().cloned().fold(f64::MAX, f64::min);
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Assign every workload of `m` to one of `cores`, minimizing the
/// weighted sum of slowdowns subject to a load-balance cap: no core's
/// aggregate weight may exceed `tolerance ×` the ideal equal share.
///
/// The construction is greedy (workloads in decreasing weight, each to
/// the least-slowdown core with remaining headroom, falling back to
/// the least-loaded core when none has headroom), followed by
/// single-move local search that accepts any move reducing total
/// weighted slowdown without violating the cap.
///
/// # Panics
///
/// Panics if `cores` is empty or contains an out-of-range index, or if
/// `tolerance < 1.0`.
pub fn balanced_partition(
    m: &CrossPerfMatrix,
    cores: &[usize],
    tolerance: f64,
) -> BalancedPartition {
    assert!(!cores.is_empty(), "need at least one core");
    assert!(
        cores.iter().all(|&c| c < m.len()),
        "core index out of range"
    );
    assert!(tolerance >= 1.0, "tolerance must be at least 1.0");
    let _pass = xps_trace::span("communal.partition");
    let n = m.len();
    let weights = m.weights();
    let total: f64 = weights.iter().sum();
    let cap = tolerance * total / cores.len() as f64;

    // Greedy construction, heaviest workloads first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            // xps-allow(no-unwrap-in-lib): matrix weights are validated finite and positive at construction
            .expect("weights are finite")
    });
    let mut slot_of = vec![0usize; n];
    let mut load = vec![0.0f64; cores.len()];
    for &w in &order {
        let mut best: Option<(usize, f64)> = None;
        for (slot, &core) in cores.iter().enumerate() {
            if load[slot] + weights[w] > cap {
                continue;
            }
            let s = m.slowdown(w, core);
            if best.map(|(_, bs)| s < bs).unwrap_or(true) {
                best = Some((slot, s));
            }
        }
        let slot = match best {
            Some((slot, _)) => slot,
            None => {
                // No core has headroom: take the least loaded.
                (0..cores.len())
                    // xps-allow(no-unwrap-in-lib): loads are sums of validated finite weights
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("loads are finite"))
                    // xps-allow(no-unwrap-in-lib): callers pass at least one core; the min over a non-empty range exists
                    .expect("cores is non-empty")
            }
        };
        slot_of[w] = slot;
        load[slot] += weights[w];
    }

    // Local search: single-workload moves that reduce total weighted
    // slowdown without breaking the cap.
    let cost = |w: usize, slot: usize| weights[w] * m.slowdown(w, cores[slot]);
    let mut improved = true;
    while improved {
        improved = false;
        for w in 0..n {
            let cur = slot_of[w];
            for alt in 0..cores.len() {
                if alt == cur {
                    continue;
                }
                if load[alt] + weights[w] > cap {
                    continue;
                }
                if cost(w, alt) + 1e-15 < cost(w, cur) {
                    load[cur] -= weights[w];
                    load[alt] += weights[w];
                    slot_of[w] = alt;
                    improved = true;
                    break;
                }
            }
        }
    }

    let assignment: Vec<usize> = slot_of.iter().map(|&s| cores[s]).collect();
    let average_slowdown = (0..n).map(|w| m.slowdown(w, assignment[w])).sum::<f64>() / n as f64;
    BalancedPartition {
        assignment,
        imbalance: imbalance_of(&load),
        load,
        average_slowdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CrossPerfMatrix {
        CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                vec![2.0, 1.8, 0.5, 0.5],
                vec![1.8, 2.0, 0.5, 0.5],
                vec![0.5, 0.5, 2.0, 1.8],
                vec![0.5, 0.5, 1.8, 2.0],
            ],
        )
        .expect("valid")
    }

    #[test]
    fn natural_split_respected() {
        // Cores a and c: workloads {a, b} belong on a, {c, d} on c.
        let p = balanced_partition(&m(), &[0, 2], 1.01);
        assert_eq!(p.assignment, vec![0, 0, 2, 2]);
        assert!((p.imbalance - 1.0).abs() < 1e-12);
        assert!(p.average_slowdown < 0.06);
    }

    #[test]
    fn cap_forces_spreading() {
        // All four workloads prefer core a, but a tolerance of 1.0
        // forces two onto core c.
        let pref_a = CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                vec![2.0, 1.0, 1.0, 1.0],
                vec![1.9, 2.0, 1.0, 1.0],
                vec![1.9, 1.0, 2.0, 1.0],
                vec![1.9, 1.0, 1.0, 2.0],
            ],
        )
        .expect("valid");
        let p = balanced_partition(&pref_a, &[0, 2], 1.0);
        let on_a = p.assignment.iter().filter(|&&c| c == 0).count();
        assert_eq!(on_a, 2, "cap must split the load: {:?}", p.assignment);
        assert!((p.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loose_tolerance_minimizes_slowdown() {
        let p_tight = balanced_partition(&m(), &[0, 2], 1.0);
        let p_loose = balanced_partition(&m(), &[0, 2], 4.0);
        assert!(p_loose.average_slowdown <= p_tight.average_slowdown + 1e-12);
    }

    #[test]
    fn weights_shift_balance() {
        let mm = m().with_weights(vec![3.0, 1.0, 1.0, 1.0]).expect("valid");
        let p = balanced_partition(&mm, &[0, 2], 1.5);
        // Workload a (weight 3) sits alone near its cap; the rest
        // crowd the other core.
        assert_eq!(p.assignment[0], 0);
        let share_a: f64 = p.load[0];
        assert!(share_a <= 1.5 * 6.0 / 2.0 + 1e-12);
    }

    #[test]
    fn single_core_trivial() {
        let p = balanced_partition(&m(), &[1], 1.0);
        assert!(p.assignment.iter().all(|&c| c == 1));
        assert!((p.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn bad_tolerance_panics() {
        balanced_partition(&m(), &[0], 0.5);
    }
}
