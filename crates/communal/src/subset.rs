//! Classic workload subsetting and the §5.3 representative-benchmark
//! pitfall.
//!
//! Subsetting picks "representative" workloads by similarity of raw
//! (microarchitecture-independent) characteristics — small Euclidean
//! distance in the normalized characteristic space. The paper's §5.3
//! shows the danger: bzip and gzip, widely reported as similar, have
//! sharply different customized architectures, and dropping one of
//! them from the exploration changes which heterogeneous-CMP core pair
//! a complete search selects, costing performance on the full set.

use crate::combin::best_combination;
use crate::matrix::CrossPerfMatrix;
use crate::metrics::Merit;
use serde::{Deserialize, Serialize};

/// One cluster of workload indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Member indices (into the original point list), ascending.
    pub members: Vec<usize>,
}

/// Index of the nearest other point to `i` under Euclidean distance.
///
/// # Panics
///
/// Panics if there are fewer than two points or dimensions differ.
pub fn nearest_neighbor(points: &[Vec<f64>], i: usize) -> usize {
    assert!(points.len() >= 2, "need at least two points");
    let mut best = usize::MAX;
    let mut best_d = f64::INFINITY;
    for (j, p) in points.iter().enumerate() {
        if j == i {
            continue;
        }
        let d = euclid(&points[i], p);
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    best
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Agglomerative (average-linkage) clustering of the characteristic
/// vectors down to `k` clusters — the dendrogram-style grouping used
/// by subsetting studies.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points.
pub fn cluster(points: &[Vec<f64>], k: usize) -> Vec<Cluster> {
    let n = points.len();
    assert!((1..=n).contains(&k), "k must be in 1..=n");
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        // Find the pair with minimum average inter-cluster distance.
        let (mut bi, mut bj, mut bd) = (0, 1, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let mut sum = 0.0;
                for &a in &clusters[i] {
                    for &b in &clusters[j] {
                        sum += euclid(&points[a], &points[b]);
                    }
                }
                let d = sum / (clusters[i].len() * clusters[j].len()) as f64;
                if d < bd {
                    bd = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        let merged = clusters.remove(bj);
        clusters[bi].extend(merged);
        clusters[bi].sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
        .into_iter()
        .map(|members| Cluster { members })
        .collect()
}

/// One merge step of an agglomerative clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Members of the first merged cluster (ascending).
    pub left: Vec<usize>,
    /// Members of the second merged cluster (ascending).
    pub right: Vec<usize>,
    /// Average-linkage distance at which the merge happened.
    pub distance: f64,
}

/// A full agglomerative clustering history — the *dendrogram* the
/// paper calls "customary in displaying subsetting properties"
/// (§5.4), and contrasts with its surrogating graphs: dendrogram
/// merges are symmetric and final, while surrogate assignment is
/// directed and can prefer a different partner at every level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    /// Merges in the order they occurred (non-decreasing distance for
    /// average linkage on a metric space, in practice).
    pub merges: Vec<Merge>,
    n: usize,
}

impl Dendrogram {
    /// The clustering at `k` clusters: replay all but the last `k - 1`
    /// merges.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the number of points.
    pub fn cut(&self, k: usize) -> Vec<Cluster> {
        assert!((1..=self.n).contains(&k), "k must be in 1..=n");
        let mut clusters: Vec<Vec<usize>> = (0..self.n).map(|i| vec![i]).collect();
        for merge in &self.merges[..self.n - k] {
            let li = clusters
                .iter()
                .position(|c| c == &merge.left)
                // xps-allow(no-unwrap-in-lib): merge records name clusters produced by the same deterministic agglomeration being replayed
                .expect("replay is consistent");
            let l = clusters.remove(li);
            let ri = clusters
                .iter()
                .position(|c| c == &merge.right)
                // xps-allow(no-unwrap-in-lib): merge records name clusters produced by the same deterministic agglomeration being replayed
                .expect("replay is consistent");
            let mut r = clusters.remove(ri);
            let mut merged = l;
            merged.append(&mut r);
            merged.sort_unstable();
            clusters.push(merged);
        }
        clusters.sort_by_key(|c| c[0]);
        clusters
            .into_iter()
            .map(|members| Cluster { members })
            .collect()
    }

    /// Render the merge history as indented text, one line per merge.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::new();
        let fmt = |members: &[usize]| -> String {
            members
                .iter()
                .map(|&i| names[i].as_str())
                .collect::<Vec<_>>()
                .join("+")
        };
        for (step, m) in self.merges.iter().enumerate() {
            out.push_str(&format!(
                "  {:2}. d={:5.2}  {{{}}} + {{{}}}\n",
                step + 1,
                m.distance,
                fmt(&m.left),
                fmt(&m.right)
            ));
        }
        out
    }
}

/// Build the full dendrogram (average linkage) of the points.
///
/// # Panics
///
/// Panics if fewer than two points are given.
pub fn dendrogram(points: &[Vec<f64>]) -> Dendrogram {
    let n = points.len();
    assert!(n >= 2, "need at least two points");
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut merges = Vec::with_capacity(n - 1);
    while clusters.len() > 1 {
        let (mut bi, mut bj, mut bd) = (0, 1, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let mut sum = 0.0;
                for &a in &clusters[i] {
                    for &b in &clusters[j] {
                        sum += euclid(&points[a], &points[b]);
                    }
                }
                let d = sum / (clusters[i].len() * clusters[j].len()) as f64;
                if d < bd {
                    bd = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        let right = clusters.remove(bj);
        let left = clusters[bi].clone();
        merges.push(Merge {
            left: left.clone(),
            right: right.clone(),
            distance: bd,
        });
        let merged = &mut clusters[bi];
        merged.extend(right);
        merged.sort_unstable();
    }
    Dendrogram { merges, n }
}

/// The §5.3 experiment's report: what subsetting costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PitfallReport {
    /// The benchmark dropped from exploration (its representative
    /// stands in for it).
    pub dropped: String,
    /// The core pair a complete search picks over the *full* set.
    pub full_choice: Vec<String>,
    /// Merit of the full-set choice, evaluated over the full set.
    pub full_value: f64,
    /// The core pair picked when the dropped benchmark is excluded
    /// from both the workload rows and the candidate architectures.
    pub reduced_choice: Vec<String>,
    /// Merit of the reduced-set choice, evaluated over the FULL set —
    /// what the system actually delivers.
    pub reduced_value_on_full: f64,
    /// Fractional loss from subsetting:
    /// `1 − reduced_value_on_full / full_value`.
    pub loss: f64,
}

/// Run the §5.3 pitfall experiment: drop `dropped` from the
/// exploration (both as a workload and as a candidate architecture),
/// select the best `k`-core combination under `merit` over the reduced
/// set, then score that choice on the full workload set against the
/// full-set optimum.
///
/// # Panics
///
/// Panics if `dropped` is not a workload of `m`, or `k` is out of
/// range for the reduced set.
pub fn pitfall_experiment(
    m: &CrossPerfMatrix,
    dropped: &str,
    k: usize,
    merit: Merit,
) -> PitfallReport {
    let d = m
        .index_of(dropped)
        .unwrap_or_else(|| panic!("unknown workload `{dropped}`"));
    let keep: Vec<usize> = (0..m.len()).filter(|&i| i != d).collect();
    let reduced = CrossPerfMatrix::new(
        keep.iter().map(|&i| m.names()[i].clone()).collect(),
        keep.iter()
            .map(|&w| keep.iter().map(|&c| m.ipt(w, c)).collect())
            .collect(),
    )
    // xps-allow(no-unwrap-in-lib): a square submatrix of a validated square matrix is square
    .expect("reduced matrix stays valid")
    .with_weights(keep.iter().map(|&i| m.weights()[i]).collect())
    // xps-allow(no-unwrap-in-lib): the kept-weights vector has exactly one entry per kept row
    .expect("reduced weights stay valid");

    let reduced_best = best_combination(&reduced, k, merit);
    // Map reduced indices back to full-matrix indices.
    let reduced_cores: Vec<usize> = reduced_best.cores.iter().map(|&i| keep[i]).collect();
    let full_best = best_combination(m, k, merit);

    let reduced_value_on_full = merit.evaluate(m, &reduced_cores);
    let full_value = full_best.merit_value;
    PitfallReport {
        dropped: dropped.to_string(),
        full_choice: full_best.names,
        full_value,
        reduced_choice: reduced_cores
            .iter()
            .map(|&i| m.names()[i].clone())
            .collect(),
        reduced_value_on_full,
        loss: 1.0 - reduced_value_on_full / full_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbor_finds_twin() {
        let pts = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0]];
        assert_eq!(nearest_neighbor(&pts, 0), 1);
        assert_eq!(nearest_neighbor(&pts, 1), 0);
        assert_eq!(nearest_neighbor(&pts, 2), 1);
    }

    #[test]
    fn clustering_groups_near_points() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.1],
        ];
        let cs = cluster(&pts, 2);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].members, vec![0, 1]);
        assert_eq!(cs[1].members, vec![2, 3]);
    }

    #[test]
    fn cluster_to_one_holds_everything() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let cs = cluster(&pts, 1);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn dendrogram_cut_matches_direct_clustering() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.1],
            vec![5.0, 0.0],
        ];
        let d = dendrogram(&pts);
        assert_eq!(d.merges.len(), 4);
        for k in 1..=5 {
            assert_eq!(d.cut(k), cluster(&pts, k), "cut at k={k}");
        }
    }

    #[test]
    fn dendrogram_merges_nondecreasing() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0], vec![15.0]];
        let d = dendrogram(&pts);
        for w in d.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-9);
        }
    }

    #[test]
    fn dendrogram_render_names_everyone() {
        let pts = vec![vec![0.0], vec![0.2], vec![9.0]];
        let d = dendrogram(&pts);
        let names: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let r = d.render(&names);
        for n in &names {
            assert!(r.contains(n.as_str()), "{n} missing from {r}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn dendrogram_single_point_panics() {
        dendrogram(&[vec![0.0]]);
    }

    #[test]
    fn pitfall_detects_loss_when_outlier_dropped() {
        // Workload d is an outlier only its own architecture serves;
        // dropping it changes the chosen pair and costs performance.
        let m = CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            vec![
                vec![2.00, 1.10, 1.60, 0.90],
                vec![1.15, 2.00, 1.50, 0.80],
                vec![1.20, 1.10, 2.00, 0.70],
                vec![0.20, 0.15, 0.25, 1.00],
            ],
        )
        .expect("valid");
        let r = pitfall_experiment(&m, "d", 2, Merit::HarmonicMean);
        assert_eq!(r.dropped, "d");
        assert!(
            r.full_choice.contains(&"d".to_string()),
            "outlier belongs in the full choice"
        );
        assert!(!r.reduced_choice.contains(&"d".to_string()));
        assert!(r.loss > 0.0, "dropping the outlier must cost: {}", r.loss);
    }

    #[test]
    fn pitfall_zero_loss_for_redundant_twin() {
        // b is a's twin; dropping b changes nothing.
        let m = CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![2.00, 1.99, 0.50],
                vec![1.99, 2.00, 0.50],
                vec![0.50, 0.50, 2.00],
            ],
        )
        .expect("valid");
        let r = pitfall_experiment(&m, "b", 2, Merit::HarmonicMean);
        assert!(r.loss.abs() < 1e-9, "twin drop is free: {}", r.loss);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn pitfall_unknown_name_panics() {
        let m = CrossPerfMatrix::new(vec!["a".into()], vec![vec![1.0]]).expect("valid");
        pitfall_experiment(&m, "zzz", 1, Merit::Average);
    }
}
