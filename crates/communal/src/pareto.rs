//! Deterministic Pareto-front extraction and hypervolume for
//! two-objective figures of merit.
//!
//! The paper customizes each core for throughput alone (IPT, §4); the
//! explorer portfolio extends the figure of merit to the pair
//! *(maximize IPT, minimize cost)* where cost is the CACTI-derived
//! energy proxy. This module is the shared geometry: given any set of
//! evaluated points it extracts the non-dominated front and scores it
//! with the standard two-dimensional hypervolume indicator, and it
//! generalizes the §5.2 complete combination search
//! ([`crate::best_combination`]) to return the whole merit/cost front
//! instead of a single scalar winner.
//!
//! Everything here is pure and order-insensitive: fronts are sorted by
//! `(cost asc, ipt desc)` with total ordering on floats, so the same
//! multiset of points yields the same bytes no matter how the caller
//! ordered them.

use crate::combin::combinations;
use crate::matrix::CrossPerfMatrix;
use crate::metrics::Merit;
use serde::{Deserialize, Serialize};

/// One evaluated point in the two-objective plane: maximize `ipt`,
/// minimize `cost`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Instructions per time unit — higher is better.
    pub ipt: f64,
    /// Cost proxy (e.g. energy per instruction, nJ) — lower is better.
    pub cost: f64,
}

impl ParetoPoint {
    /// True if `self` dominates `other`: at least as good in both
    /// objectives and strictly better in at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let ge = self.ipt >= other.ipt && self.cost <= other.cost;
        let gt = self.ipt > other.ipt || self.cost < other.cost;
        ge && gt
    }
}

/// Extract the non-dominated front from `points`.
///
/// The result is sorted by `(cost asc, ipt desc)` and deduplicated;
/// it is invariant under permutation of the input (total float
/// ordering breaks every tie the same way). Non-finite points are
/// discarded — an unrealizable design contributes nothing to the
/// front.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut pts: Vec<ParetoPoint> = points
        .iter()
        .copied()
        .filter(|p| p.ipt.is_finite() && p.cost.is_finite())
        .collect();
    pts.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then_with(|| b.ipt.total_cmp(&a.ipt))
    });
    pts.dedup_by(|a, b| a.cost == b.cost && a.ipt == b.ipt);
    // Sweep in cost order: a point survives iff its IPT strictly
    // exceeds every cheaper (or equal-cost, higher-IPT-first) point
    // seen so far.
    let mut front = Vec::new();
    let mut best_ipt = f64::NEG_INFINITY;
    for p in pts {
        if p.ipt > best_ipt {
            best_ipt = p.ipt;
            front.push(p);
        }
    }
    front
}

/// Two-dimensional hypervolume of `front` against `reference`
/// (a point worse than everything in the front: lower IPT, higher
/// cost). Larger is better. Points outside the reference box
/// contribute only their clipped part; an empty front scores zero.
///
/// `front` must be a Pareto front as produced by [`pareto_front`]
/// (sorted by cost ascending, IPT strictly increasing); this is
/// re-established defensively so callers may pass any point set.
pub fn hypervolume(front: &[ParetoPoint], reference: &ParetoPoint) -> f64 {
    let front = pareto_front(front);
    let mut volume = 0.0;
    let mut prev_ipt = reference.ipt;
    for p in &front {
        let width = (reference.cost - p.cost).max(0.0);
        let height = (p.ipt - prev_ipt).max(0.0);
        volume += width * height;
        prev_ipt = prev_ipt.max(p.ipt);
    }
    volume
}

/// One entry of the combination front: a core combination with its
/// merit value and summed per-core cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComboParetoEntry {
    /// Indices of the chosen architectures, ascending.
    pub cores: Vec<usize>,
    /// Names of the chosen architectures, matrix order.
    pub names: Vec<String>,
    /// Merit value of the combination (the IPT axis).
    pub merit_value: f64,
    /// Summed per-core cost of the combination (the cost axis).
    pub cost: f64,
}

/// Generalize the §5.2 complete search to two objectives: enumerate
/// every `k`-core combination, score it by `merit` and by the sum of
/// the chosen cores' `costs`, and keep the non-dominated set.
///
/// `costs[i]` is the cost of architecture `i` (e.g. its customized
/// core's energy-per-instruction). The returned front is sorted by
/// `(cost asc, merit desc)` like [`pareto_front`], with ties broken
/// by the lexicographically smallest core set, so it is deterministic
/// and permutation-independent.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of architectures, or
/// if `costs` does not match the matrix.
pub fn combination_front(
    m: &CrossPerfMatrix,
    k: usize,
    merit: Merit,
    costs: &[f64],
) -> Vec<ComboParetoEntry> {
    assert_eq!(
        costs.len(),
        m.len(),
        "one cost per architecture is required"
    );
    let pass = xps_trace::span("communal.combination_front");
    let mut all: Vec<ComboParetoEntry> = Vec::new();
    combinations(m.len(), k, |combo| {
        let merit_value = merit.evaluate(m, combo);
        let cost: f64 = combo.iter().map(|&i| costs[i]).sum();
        all.push(ComboParetoEntry {
            cores: combo.to_vec(),
            names: combo.iter().map(|&i| m.names()[i].clone()).collect(),
            merit_value,
            cost,
        });
    });
    let evaluated = all.len() as u64;
    // Same sweep as `pareto_front`, but over combination entries so
    // the winning subsets survive alongside their coordinates.
    all.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then_with(|| b.merit_value.total_cmp(&a.merit_value))
            .then_with(|| a.cores.cmp(&b.cores))
    });
    let mut front: Vec<ComboParetoEntry> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for e in all {
        if e.merit_value > best {
            best = e.merit_value;
            front.push(e);
        }
    }
    pass.end_with(|| {
        xps_trace::attrs([
            ("k", k.into()),
            ("evaluated", evaluated.into()),
            ("front", (front.len() as u64).into()),
        ])
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ipt: f64, cost: f64) -> ParetoPoint {
        ParetoPoint { ipt, cost }
    }

    #[test]
    fn dominance_is_strict() {
        assert!(p(2.0, 1.0).dominates(&p(1.0, 2.0)));
        assert!(p(2.0, 1.0).dominates(&p(2.0, 2.0)));
        assert!(p(2.0, 1.0).dominates(&p(1.0, 1.0)));
        assert!(!p(2.0, 1.0).dominates(&p(2.0, 1.0)));
        assert!(!p(1.0, 1.0).dominates(&p(2.0, 2.0)));
    }

    #[test]
    fn front_drops_dominated_and_sorts() {
        let pts = vec![p(1.0, 1.0), p(3.0, 3.0), p(2.0, 2.0), p(0.5, 2.5)];
        let f = pareto_front(&pts);
        assert_eq!(f, vec![p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)]);
    }

    #[test]
    fn front_permutation_invariant_and_dedups() {
        let a = vec![p(1.0, 1.0), p(2.0, 2.0), p(1.0, 1.0)];
        let b = vec![p(2.0, 2.0), p(1.0, 1.0)];
        assert_eq!(pareto_front(&a), pareto_front(&b));
    }

    #[test]
    fn front_ignores_non_finite() {
        let pts = vec![p(f64::NAN, 1.0), p(1.0, f64::INFINITY), p(1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![p(1.0, 1.0)]);
    }

    #[test]
    fn hypervolume_rectangles() {
        // Single point: one rectangle.
        let r = p(0.0, 4.0);
        assert!((hypervolume(&[p(2.0, 1.0)], &r) - 6.0).abs() < 1e-12);
        // Two points form a staircase: 3*1 + 2*1 = 5.
        let f = vec![p(1.0, 1.0), p(2.0, 2.0)];
        assert!((hypervolume(&f, &r) - 5.0).abs() < 1e-12);
        // Empty front scores zero.
        assert_eq!(hypervolume(&[], &r), 0.0);
    }

    #[test]
    fn hypervolume_monotone_in_points() {
        let r = p(0.0, 10.0);
        let small = vec![p(1.0, 2.0)];
        let big = vec![p(1.0, 2.0), p(3.0, 5.0)];
        assert!(hypervolume(&big, &r) >= hypervolume(&small, &r));
    }

    #[test]
    fn combination_front_contains_best_combination() {
        let m = CrossPerfMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![4.0, 1.0, 1.0],
                vec![1.0, 3.0, 1.0],
                vec![1.0, 1.0, 2.0],
            ],
        )
        .expect("valid");
        let costs = vec![3.0, 2.0, 1.0];
        let front = combination_front(&m, 2, Merit::Average, &costs);
        assert!(!front.is_empty());
        // No entry dominates another.
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    let pa = p(a.merit_value, a.cost);
                    let pb = p(b.merit_value, b.cost);
                    assert!(!pa.dominates(&pb), "{a:?} dominates {b:?}");
                }
            }
        }
        // The scalar best combination's merit appears on the front
        // (it is the highest-merit extreme).
        let best = crate::best_combination(&m, 2, Merit::Average);
        let max_merit = front
            .iter()
            .map(|e| e.merit_value)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max_merit - best.merit_value).abs() < 1e-12);
    }
}
