//! Edge cases of the communal-customization algorithms: degenerate
//! workload sets (empty, single benchmark) and tied IPTs, where the
//! selection rules' tie-breaking becomes observable behavior that
//! downstream determinism depends on.

use xps_communal::{
    balanced_partition, best_combination, combinations, simulate_jobs, CrossPerfMatrix, JobPolicy,
    Merit, ScheduleOptions,
};

fn uniform(n: usize, diag: f64, off: f64) -> CrossPerfMatrix {
    let names = (0..n).map(|i| format!("w{i}")).collect();
    CrossPerfMatrix::from_fn(names, |w, c| if w == c { diag } else { off }).expect("valid")
}

#[test]
fn empty_workload_set_is_rejected_with_a_named_error() {
    let e = CrossPerfMatrix::new(vec![], vec![]).expect_err("empty set");
    assert!(e.contains("at least one workload"), "unhelpful error: {e}");
}

#[test]
fn ragged_and_nonpositive_matrices_are_rejected() {
    let names = vec!["a".to_string(), "b".to_string()];
    let e = CrossPerfMatrix::new(names.clone(), vec![vec![1.0, 2.0]]).expect_err("missing row");
    assert!(e.contains("expected 2 rows"), "{e}");
    let e = CrossPerfMatrix::new(names.clone(), vec![vec![1.0], vec![1.0, 2.0]])
        .expect_err("short row");
    assert!(e.contains("has 1 entries"), "{e}");
    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let e = CrossPerfMatrix::new(names.clone(), vec![vec![1.0, bad], vec![1.0, 2.0]])
            .expect_err("bad cell");
        assert!(e.contains("positive and finite"), "{bad}: {e}");
    }
}

#[test]
fn single_benchmark_campaign_degenerates_cleanly() {
    let m = CrossPerfMatrix::new(vec!["solo".into()], vec![vec![1.7]]).expect("valid");
    // The only combination is the benchmark's own core, under every
    // merit.
    for merit in Merit::ALL {
        let r = best_combination(&m, 1, merit);
        assert_eq!(r.cores, vec![0]);
        assert_eq!(r.names, vec!["solo".to_string()]);
        assert!((r.avg_ipt - 1.7).abs() < 1e-12);
        assert!((r.har_ipt - 1.7).abs() < 1e-12);
    }
    // One core, one workload: trivially balanced partition.
    let p = balanced_partition(&m, &[0], 1.0);
    assert_eq!(p.assignment, vec![0]);
    assert!((p.imbalance - 1.0).abs() < 1e-12);
    assert!(p.average_slowdown.abs() < 1e-12);
    // Scheduling on the single core never redirects and decomposes.
    let mut o = ScheduleOptions::new(vec![0], JobPolicy::BestAvailable);
    o.jobs = 500;
    let s = simulate_jobs(&m, &o);
    assert!((s.redirect_rate).abs() < 1e-12, "nowhere to redirect");
    assert!((s.avg_turnaround - (s.avg_execution + s.avg_wait)).abs() < 1e-9);
}

#[test]
fn k_equals_n_enumerates_exactly_one_combination() {
    let mut seen = Vec::new();
    combinations(4, 4, |c| seen.push(c.to_vec()));
    assert_eq!(seen, vec![vec![0, 1, 2, 3]]);
}

#[test]
fn tied_ipts_break_toward_the_first_combination() {
    // Every architecture is interchangeable: all merits tie across all
    // combinations, so the lexicographically first subset must win —
    // this tie-break is what keeps repeated runs byte-identical.
    let m = uniform(4, 2.0, 2.0);
    for k in 1..=4usize {
        for merit in Merit::ALL {
            let r = best_combination(&m, k, merit);
            assert_eq!(
                r.cores,
                (0..k).collect::<Vec<_>>(),
                "{merit:?} k={k} must keep the first tied combination"
            );
        }
    }
}

#[test]
fn tied_ipts_break_toward_the_lower_architecture_index() {
    let m = uniform(3, 2.0, 2.0);
    for w in 0..3 {
        assert_eq!(m.best_config_for(w, &[2, 1, 0]), 2, "first listed wins");
        assert_eq!(m.best_config_for(w, &[0, 1, 2]), 0, "first listed wins");
    }
}

#[test]
fn tied_ipts_keep_the_partition_deterministic() {
    // With all slowdowns equal the partition is decided purely by the
    // greedy order and the balance cap; run it twice and require the
    // identical assignment.
    let m = uniform(5, 2.0, 2.0);
    let a = balanced_partition(&m, &[0, 2], 1.5);
    let b = balanced_partition(&m, &[0, 2], 1.5);
    assert_eq!(a, b, "ties must not introduce nondeterminism");
    assert!(a.average_slowdown.abs() < 1e-12, "no slowdown when tied");
}

#[test]
fn burstiness_bounds_are_inclusive() {
    let m = uniform(2, 2.0, 1.0);
    for burstiness in [0.0, 1.0] {
        let mut o = ScheduleOptions::new(vec![0, 1], JobPolicy::StallForAssigned);
        o.jobs = 200;
        o.burstiness = burstiness;
        let s = simulate_jobs(&m, &o);
        assert!(s.avg_turnaround.is_finite(), "burstiness={burstiness}");
    }
}
