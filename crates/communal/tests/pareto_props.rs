//! Property tests for Pareto-front extraction: the front contains no
//! dominated point, keeps every non-dominated input, and is invariant
//! under any permutation of its input — the property that makes the
//! bake-off's fronts byte-identical regardless of the order in which
//! explorers happened to measure points.

use proptest::collection::vec;
use proptest::prelude::*;
use xps_communal::{hypervolume, pareto_front, ParetoPoint};

/// Coarse coordinate grids on both axes so duplicates and exact ties
/// actually occur — the edge cases a naive strict-inequality sweep
/// gets wrong.
fn arb_points() -> impl Strategy<Value = Vec<ParetoPoint>> {
    vec((0u32..20, 0u32..20), 24).prop_map(|raw| {
        raw.into_iter()
            .map(|(i, c)| ParetoPoint {
                ipt: f64::from(i) * 0.25,
                cost: f64::from(c) * 0.5,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No point of the front is dominated by any input point, and
    /// every input point is dominated by (or equal to) some front
    /// point — the front is exactly the non-dominated set.
    #[test]
    fn front_is_the_nondominated_set(points in arb_points()) {
        let front = pareto_front(&points);
        for f in &front {
            prop_assert!(
                !points.iter().any(|p| p.dominates(f)),
                "front point {f:?} is dominated by an input"
            );
        }
        for p in &points {
            prop_assert!(
                front
                    .iter()
                    .any(|f| f.dominates(p) || (f.ipt == p.ipt && f.cost == p.cost)),
                "input {p:?} neither on the front nor dominated"
            );
        }
        // Mutually non-dominated, no duplicates.
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.dominates(b));
                    prop_assert!(a.ipt != b.ipt || a.cost != b.cost, "duplicate on front");
                }
            }
        }
    }

    /// The front (and therefore the hypervolume) is a function of the
    /// *set* of measured points, not the measurement order.
    #[test]
    fn front_is_permutation_invariant(
        points in arb_points(),
        rot in 0usize..24,
    ) {
        let base = pareto_front(&points);
        let mut reversed = points.clone();
        reversed.reverse();
        prop_assert_eq!(&pareto_front(&reversed), &base);
        let mut rotated = points.clone();
        if !rotated.is_empty() {
            let k = rot % rotated.len();
            rotated.rotate_left(k);
        }
        prop_assert_eq!(&pareto_front(&rotated), &base);
        let reference = ParetoPoint { ipt: 0.0, cost: 10.0 };
        let hv = hypervolume(&points, &reference);
        prop_assert_eq!(hypervolume(&reversed, &reference), hv);
        prop_assert_eq!(hypervolume(&rotated, &reference), hv);
        prop_assert!(hv >= 0.0);
    }
}
