//! Property-based tests of the communal-customization analysis over
//! random cross-performance matrices.

use proptest::prelude::*;
use xps_communal::{
    assign_surrogates, best_combination, ideal_performance, pitfall_experiment, CrossPerfMatrix,
    Merit, Propagation,
};

/// Random diagonal-dominant matrices of 3..=8 workloads (the invariant
/// the paper's replacement rule guarantees).
fn arb_matrix() -> impl Strategy<Value = CrossPerfMatrix> {
    (3usize..=8)
        .prop_flat_map(|n| {
            (
                Just(n),
                prop::collection::vec(0.2f64..4.0, n),
                prop::collection::vec(prop::collection::vec(0.05f64..1.0, n), n),
            )
        })
        .prop_map(|(n, diag, offs)| {
            let names = (0..n).map(|i| format!("w{i}")).collect();
            let ipt = (0..n)
                .map(|w| {
                    (0..n)
                        .map(|c| {
                            if w == c {
                                diag[w]
                            } else {
                                diag[w] * offs[w][c]
                            }
                        })
                        .collect()
                })
                .collect();
            CrossPerfMatrix::new(names, ipt).expect("constructed valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Harmonic mean never exceeds the average for any combination.
    #[test]
    fn harmonic_leq_average(m in arb_matrix(), k in 1usize..4) {
        let k = k.min(m.len());
        let r = best_combination(&m, k, Merit::HarmonicMean);
        prop_assert!(r.har_ipt <= r.avg_ipt + 1e-12);
    }

    /// Contention-weighted harmonic never exceeds the plain harmonic
    /// (shares are at least one).
    #[test]
    fn contention_weighted_leq_harmonic(m in arb_matrix(), k in 1usize..4) {
        let k = k.min(m.len());
        let combo: Vec<usize> = (0..k).collect();
        let cw = Merit::ContentionWeightedHarmonicMean.evaluate(&m, &combo);
        let h = Merit::HarmonicMean.evaluate(&m, &combo);
        prop_assert!(cw <= h + 1e-12, "cw {cw} > har {h}");
    }

    /// Adding a core never lowers the best achievable value of any
    /// per-workload-best merit.
    #[test]
    fn more_cores_monotone(m in arb_matrix()) {
        for merit in [Merit::Average, Merit::HarmonicMean] {
            let mut prev = f64::MIN;
            for k in 1..=m.len() {
                let r = best_combination(&m, k, merit);
                prop_assert!(r.merit_value >= prev - 1e-12);
                prev = r.merit_value;
            }
        }
    }

    /// The complete search at full count equals the ideal.
    #[test]
    fn full_search_equals_ideal(m in arb_matrix()) {
        let (avg, har) = ideal_performance(&m);
        let r = best_combination(&m, m.len(), Merit::HarmonicMean);
        prop_assert!((r.har_ipt - har).abs() < 1e-9);
        prop_assert!((r.avg_ipt - avg).abs() < 1e-9);
    }

    /// Complete search dominates any surrogate outcome at the same
    /// core count (surrogates fix the assignment; search both picks
    /// the set and lets workloads choose).
    #[test]
    fn search_dominates_surrogates(m in arb_matrix()) {
        for mode in [Propagation::Forward, Propagation::ForwardBackward] {
            let s = assign_surrogates(&m, mode, 2);
            let k = s.final_architectures.len();
            let r = best_combination(&m, k, Merit::HarmonicMean);
            prop_assert!(
                r.har_ipt >= s.harmonic_ipt(&m) - 1e-9,
                "{mode:?}: search {} < surrogate {}",
                r.har_ipt,
                s.harmonic_ipt(&m)
            );
        }
    }

    /// Surrogate assignments always produce a consistent partition:
    /// every workload maps to a surviving architecture, and
    /// own-architecture workloads map to themselves.
    #[test]
    fn surrogates_partition(m in arb_matrix(), target in 1usize..4) {
        let target = target.min(m.len());
        for mode in [Propagation::None, Propagation::Forward, Propagation::ForwardBackward] {
            let s = assign_surrogates(&m, mode, target);
            prop_assert_eq!(s.assignment.len(), m.len());
            for &a in &s.assignment {
                prop_assert!(s.final_architectures.contains(&a));
            }
            for &root in &s.final_architectures {
                prop_assert!(
                    mode == Propagation::ForwardBackward || s.assignment[root] == root,
                    "without feedback, a surviving architecture serves its own workload"
                );
            }
            let total: usize = s.groups().iter().map(|(_, g)| g.len()).sum();
            prop_assert_eq!(total, m.len());
        }
    }

    /// Greedy edges are committed in non-decreasing... not guaranteed
    /// globally (legality changes), but each edge's slowdown is the
    /// minimum among pairs legal at its turn, so the first edge is the
    /// global minimum slowdown off the diagonal.
    #[test]
    fn first_edge_is_global_minimum(m in arb_matrix()) {
        let s = assign_surrogates(&m, Propagation::ForwardBackward, 1);
        if let Some(first) = s.edges.first() {
            let mut min = f64::INFINITY;
            for w in 0..m.len() {
                for c in 0..m.len() {
                    if w != c {
                        min = min.min(m.slowdown(w, c));
                    }
                }
            }
            prop_assert!((first.slowdown - min).abs() < 1e-12);
        }
    }

    /// The pitfall experiment never reports a negative loss under a
    /// per-workload-best merit: the full search is optimal by
    /// construction.
    #[test]
    fn pitfall_loss_nonnegative(m in arb_matrix()) {
        let name = m.names()[0].clone();
        let k = 2usize.min(m.len() - 1);
        for merit in [Merit::Average, Merit::HarmonicMean] {
            let r = pitfall_experiment(&m, &name, k, merit);
            prop_assert!(r.loss >= -1e-12, "{merit:?} loss {}", r.loss);
        }
    }

    /// Slowdowns are zero on the diagonal and under one off it for
    /// diagonal-dominant matrices.
    #[test]
    fn slowdown_domain(m in arb_matrix()) {
        for w in 0..m.len() {
            prop_assert!(m.slowdown(w, w).abs() < 1e-12);
            for c in 0..m.len() {
                let s = m.slowdown(w, c);
                prop_assert!((0.0..1.0).contains(&s) || s.abs() < 1e-12);
            }
        }
    }

    /// Importance weights: giving one workload an enormous weight makes
    /// the best single core its own.
    #[test]
    fn weights_pull_selection(m in arb_matrix(), star in 0usize..3) {
        let star = star.min(m.len() - 1);
        let mut weights = vec![1.0; m.len()];
        weights[star] = 1e6;
        let m = m.with_weights(weights).expect("valid weights");
        let r = best_combination(&m, 1, Merit::HarmonicMean);
        prop_assert_eq!(r.cores, vec![star]);
    }
}
