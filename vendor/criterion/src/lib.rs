//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal harness with the same authoring surface:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`,
//! and `Bencher::iter`. Timing is a plain `Instant` loop — calibrate an
//! iteration count against a per-sample time budget, then report the
//! median of the per-iteration means across samples. No statistical
//! machinery, plots, or saved baselines; output is one line per
//! benchmark on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long a benchmark spends per sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

/// Unit annotation used to derive a rate from elapsed time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `group-name/function-name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    #[must_use]
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the measured closure; handed to benchmark functions.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    sample_count: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine` repeatedly; its return value is black-boxed
    /// so the computation cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample fills the budget (or the routine proves slow enough
        // that a single iteration is the sample).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                let scale = SAMPLE_BUDGET.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(1.1, 8.0)).ceil() as u64
            };
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Median per-iteration time across samples.
    fn per_iter(&self) -> Duration {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX)
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_sample: 0,
        sample_count: sample_size.max(1),
        samples: Vec::new(),
    };
    f(&mut b);
    let per_iter = b.per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
            format!(
                "  thrpt: {:.3} Melem/s",
                n as f64 / per_iter.as_secs_f64() / 1e6
            )
        }
        Some(Throughput::Bytes(n)) if !per_iter.is_zero() => {
            format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("{id:<48} time: {}{rate}", format_duration(per_iter));
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate benchmarks with work-per-iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            f,
        );
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n)
            .fold((0u64, 1u64), |(a, b), _| (b, a.wrapping_add(b)))
            .0
    }

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("fib-20", |b| b.iter(|| fib(black_box(20))));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.throughput(Throughput::Elements(20));
        g.bench_function("fib-20", |b| b.iter(|| fib(black_box(20))));
        g.bench_with_input(BenchmarkId::new("fib", 8), &8u64, |b, &n| {
            b.iter(|| fib(black_box(n)));
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.5000 ms");
    }
}
