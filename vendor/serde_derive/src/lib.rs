//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` crate's simplified
//! [`Serialize`]/[`Deserialize`] traits (a tree-valued data model, see
//! `vendor/serde`) for the shapes this workspace actually uses: structs
//! with named fields and enums with unit variants. Anything else is a
//! compile error with a clear message.
//!
//! The implementation deliberately avoids `syn`/`quote` (unavailable
//! offline): it walks the raw token stream to extract the item name and
//! field/variant names, then emits the impls as formatted source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a parsed item turned out to be.
enum Item {
    /// A struct with its named fields.
    Struct { name: String, fields: Vec<String> },
    /// An enum with its unit variants.
    Enum { name: String, variants: Vec<String> },
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => panic!("expected attribute body, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse the fields of a braced struct body: named fields only.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, got `{other}`"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // Parenthesized/bracketed subtrees arrive as single groups, so
        // only `<`/`>` need explicit depth tracking.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {
                    tokens.next();
                }
            }
        }
        fields.push(name);
    }
    fields
}

/// Parse the variants of a braced enum body: unit variants only.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, got `{other}`"),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(other) => panic!(
                "the vendored serde derive supports unit enum variants only; \
                 variant `{name}` is followed by `{other}`"
            ),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "the vendored serde derive supports non-generic braced items only \
             (deriving on `{name}`, got {other:?})"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_unit_variants(body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.member(\"{f}\")?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::std::string::String> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::std::string::String> {{\n\
                         match v.as_str()? {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::std::format!(\
                                 \"unknown variant `{{}}` for {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
