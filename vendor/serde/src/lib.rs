//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal serde replacement (see `vendor/` in the
//! workspace root). Instead of serde's visitor architecture, values
//! serialize to and deserialize from a concrete JSON-like tree,
//! [`Value`]; `vendor/serde_json` renders and parses that tree in a
//! format byte-compatible with real `serde_json` for the data shapes
//! this repository persists (structs with named fields, unit enums,
//! numbers, strings, sequences, options).
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the companion
//! `serde_derive` stand-in and re-exported here exactly like the real
//! crate's `derive` feature.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// null
    Null,
    /// true / false
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object member by key.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the key.
    pub fn member(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            other => Err(format!("expected object with field `{key}`, got {other:?}")),
        }
    }

    /// View as a string.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Convert to the data-model tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the data-model tree.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch.
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, String> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, String> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(format!(
                        "expected unsigned integer, got {other:?}"
                    )),
                };
                <$t>::try_from(raw).map_err(|_| format!(
                    "integer {raw} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, String> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| format!("integer {u} out of range"))?,
                    other => return Err(format!(
                        "expected integer, got {other:?}"
                    )),
                };
                <$t>::try_from(raw).map_err(|_| format!(
                    "integer {raw} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, String> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, String> {
        v.as_str().map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, String> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($n:literal => $($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Arr(items) if items.len() == $n => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(format!(
                        "expected array of length {}, got {other:?}", $n
                    )),
                }
            }
        }
    };
}
impl_serde_tuple!(2 => A.0, B.1);
impl_serde_tuple!(3 => A.0, B.1, C.2);
impl_serde_tuple!(4 => A.0, B.1, C.2, D.3);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], String> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {got}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        a: u32,
        b: f64,
        name: String,
        opt: Option<u8>,
        xs: Vec<u64>,
        pair: [Option<u8>; 2],
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn derive_roundtrip() {
        let d = Demo {
            a: 7,
            b: 0.25,
            name: "x".into(),
            opt: None,
            xs: vec![1, 2, 3],
            pair: [Some(4), None],
        };
        let v = d.to_value();
        let back = Demo::from_value(&v).expect("roundtrip");
        assert_eq!(back, d);
    }

    #[test]
    fn enum_roundtrip() {
        let v = Kind::Beta.to_value();
        assert_eq!(v, Value::Str("Beta".into()));
        assert_eq!(Kind::from_value(&v).expect("known variant"), Kind::Beta);
        assert!(Kind::from_value(&Value::Str("Gamma".into())).is_err());
    }

    #[test]
    fn missing_field_reported() {
        let v = Value::Obj(vec![("a".into(), Value::U64(1))]);
        let err = Demo::from_value(&v).expect_err("incomplete");
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn negative_integers() {
        let v = (-5i64).to_value();
        assert_eq!(i64::from_value(&v).expect("parses"), -5);
        assert!(u32::from_value(&v).is_err());
    }
}
