//! Offline stand-in for `proptest`.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal replacement that keeps the same testing
//! surface: the [`proptest!`] macro, `prop_assert*` macros, range /
//! tuple / `Just` / `select` / `collection::vec` strategies, and
//! `.prop_map` / `.prop_flat_map` combinators.
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! no shrinking. Each test case is drawn from a deterministic RNG
//! seeded from the test name and case index, so failures reproduce
//! exactly across runs and machines.

#![forbid(unsafe_code)]

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! Deterministic case-generation RNG.

    /// SplitMix64-based RNG; one independent stream per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test name and case index.
        #[must_use]
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53-bit resolution.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be nonzero.
        pub fn next_index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample from an empty domain");
            // Modulo bias is irrelevant at test-domain sizes.
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}", self.start, self.end,
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = u128::from(rng.next_u64()) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for ::core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod sample {
    //! Uniform choice from a fixed set of options.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over a fixed option list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Choose uniformly from `options` (must be non-empty).
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.next_index(self.options.len())].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-length vectors.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generate a `Vec` of exactly `len` independent elements.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over `A`'s full domain.
    #[derive(Debug, Clone, Default)]
    pub struct Any<A> {
        _marker: ::core::marker::PhantomData<A>,
    }

    /// The canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: ::core::marker::PhantomData,
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Assert inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written explicitly, as with
/// real proptest) that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    ::core::stringify!($name),
                    __case,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, f64)> {
        (1u32..10, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..7, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn combinators_compose(
            (n, f) in arb_pair(),
            v in prop::collection::vec(0u64..5, 3),
            pick in prop::sample::select(vec![10u8, 20, 30]),
            seed in any::<u64>(),
            fixed in Just(99usize),
        ) {
            prop_assert!(n >= 1 && n < 10);
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!([10u8, 20, 30].contains(&pick));
            let _ = seed;
            prop_assert_eq!(fixed, 99);
            prop_assert_ne!(fixed, 98);
        }

        #[test]
        fn flat_map_feeds_dependent_strategy(
            (len, xs) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0.0f64..1.0, n))
            })
        ) {
            prop_assert_eq!(xs.len(), len);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, 0.0f64..1.0);
        let a: Vec<_> = (0..8)
            .map(|c| strat.sample(&mut TestRng::deterministic("t", c)))
            .collect();
        let b: Vec<_> = (0..8)
            .map(|c| strat.sample(&mut TestRng::deterministic("t", c)))
            .collect();
        assert_eq!(a, b);
        // Different cases see different draws.
        assert_ne!(a[0], a[1]);
    }
}
