//! Offline stand-in for `serde_json`, rendering and parsing the
//! vendored `serde` crate's [`Value`] tree.
//!
//! The pretty output format matches real `serde_json` (two-space
//! indent, `.0`-suffixed integral floats via Rust's shortest-roundtrip
//! formatting), so files persisted by earlier builds parse unchanged.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) -> Result<()> {
    if !x.is_finite() {
        return Err(Error(format!("cannot serialize non-finite float {x}")));
    }
    // `{:?}` is Rust's shortest round-trip form, which keeps a `.0`
    // on integral values exactly like serde_json's Ryu output.
    out.push_str(&format!("{x:?}"));
    Ok(())
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) -> Result<()> {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => write_f64(out, *x)?,
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    write_value(out, item, indent + 1, pretty)?;
                }
                pad(out, indent);
                out.push(']');
            }
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (k, item)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    write_value(out, item, indent + 1, pretty)?;
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
    Ok(())
}

/// Serialize compactly.
///
/// # Errors
///
/// Returns an error on non-finite floats.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, false)?;
    Ok(out)
}

/// Serialize with two-space-indented pretty printing.
///
/// # Errors
///
/// Returns an error on non-finite floats.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0, true)?;
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through.
                b => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    if b >= 0x80 {
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        self.pos = end;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|e| Error(e.to_string()))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|v| Value::I64(-v))
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }
}

/// Parse a JSON document into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        xs: Vec<f64>,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Doc {
        n: u64,
        frac: f64,
        flag: bool,
        inner: Nested,
        maybe: Option<u32>,
    }

    fn doc() -> Doc {
        Doc {
            n: 42,
            frac: 0.321948006283717,
            flag: true,
            inner: Nested {
                xs: vec![1.0, 2.5, 8388608.0],
                label: "hello \"quoted\"\n".into(),
            },
            maybe: None,
        }
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let d = doc();
        let compact = to_string(&d).expect("serializes");
        let pretty = to_string_pretty(&d).expect("serializes");
        assert_eq!(from_str::<Doc>(&compact).expect("parses"), d);
        assert_eq!(from_str::<Doc>(&pretty).expect("parses"), d);
        assert!(pretty.contains("  \"n\": 42"));
    }

    #[test]
    fn float_precision_survives() {
        let d = doc();
        let s = to_string(&d).expect("serializes");
        let back: Doc = from_str(&s).expect("parses");
        assert_eq!(back.frac.to_bits(), d.frac.to_bits());
    }

    #[test]
    fn integral_floats_keep_point() {
        let s = to_string(&vec![1.0f64]).expect("serializes");
        assert_eq!(s, "[1.0]");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Doc>("{").is_err());
        assert!(from_str::<Doc>("[]").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
        assert!(from_str::<u32>("12 junk").is_err());
    }

    #[test]
    fn parses_real_measured_shapes() {
        let text = r#"{ "clock_ns": 0.3354996515715838, "width": 6, "neg": -3 }"#;
        #[derive(Debug, Serialize, Deserialize)]
        struct Cfg {
            clock_ns: f64,
            width: u32,
            neg: i32,
        }
        let c: Cfg = from_str(text).expect("parses");
        assert_eq!(c.width, 6);
        assert_eq!(c.neg, -3);
        assert_eq!(c.clock_ns.to_bits(), 0.3354996515715838f64.to_bits());
    }
}
