//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the handful of external dependencies are vendored as
//! minimal, API-compatible implementations (see `vendor/` in the
//! workspace root). This crate covers exactly the surface the
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen` / `gen_range`.
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family the real `rand 0.8` uses on 64-bit targets. The
//! exact stream does not need to match upstream `rand`; every
//! experiment in the workspace only relies on the stream being
//! deterministic for a fixed seed, which this implementation
//! guarantees.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw stream.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the top bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can produce. Mirrors real `rand`'s
/// `SampleUniform`: besides carrying the sampling arithmetic, the
/// bound is what lets type inference resolve `gen_range(1..=3)` —
/// `SampleRange` below has a single blanket impl per range shape, so
/// the range's element type unifies directly with `T`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`); the range must be non-empty.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                // Modulo bias is negligible for the spans used here.
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range {lo}..{hi}",
                );
                lo + (f64::sample(rng) * f64::from(hi - lo)) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn uniformly from (`gen_range`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the 64-bit seed.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; splitmix64
            // cannot produce four zero outputs from any seed, but keep
            // the guard for clarity.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differentiate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=1);
            assert!(w <= 1);
            let f = rng.gen_range(0.85f64..1.18);
            assert!((0.85..1.18).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4000..6000).contains(&trues), "{trues}");
    }
}
