//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the handful of external dependencies are vendored as
//! minimal, API-compatible implementations (see `vendor/` in the
//! workspace root). This crate covers exactly the surface the
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen` / `gen_range`.
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family the real `rand 0.8` uses on 64-bit targets. The
//! exact stream does not need to match upstream `rand`; every
//! experiment in the workspace only relies on the stream being
//! deterministic for a fixed seed, which this implementation
//! guarantees.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw stream.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the top bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can produce. Mirrors real `rand`'s
/// `SampleUniform`: besides carrying the sampling arithmetic, the
/// bound is what lets type inference resolve `gen_range(1..=3)` —
/// `SampleRange` below has a single blanket impl per range shape, so
/// the range's element type unifies directly with `T`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`); the range must be non-empty.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                // Modulo bias is negligible for the spans used here.
                // When the span fits in 64 bits (always, for the
                // workspace's ranges) reduce in u64: same remainder,
                // no u128 division in the trace generator's hot loop.
                let v = match u64::try_from(span) {
                    Ok(span64) => u128::from(rng.next_u64() % span64),
                    Err(_) => u128::from(rng.next_u64()) % span,
                };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range {lo}..{hi}",
                );
                lo + (f64::sample(rng) * f64::from(hi - lo)) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn uniformly from (`gen_range`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// A precomputed uniform `u64` range distribution, mirroring
/// `rand::distributions::Uniform` for the one case the workspace
/// samples in a hot loop.
///
/// Produces *exactly* the values `lo + rng.next_u64() % span` — the
/// same stream as [`Rng::gen_range`] on the equivalent range — but
/// replaces the per-draw hardware division with a precomputed-
/// reciprocal remainder (Lemire's fastmod, widened to 64-bit inputs
/// with a 128-bit magic). The trace generator draws from profile-
/// derived ranges millions of times per simulation; hoisting the
/// divide out of the loop is worth several ns per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uniform {
    lo: u64,
    span: u64,
    /// `ceil(2^128 / span)` mod 2^128, as `u128::MAX / span + 1`
    /// (wraps to 0 for span 1, where the remainder is always 0).
    magic: u128,
}

impl Uniform {
    /// Distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Uniform {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        let span = hi - lo;
        Uniform {
            lo,
            span,
            magic: (u128::MAX / u128::from(span)).wrapping_add(1),
        }
    }

    /// Draw one value.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let x = rng.next_u64();
        // r = x % span without a division: the low 128 bits of
        // x * ceil(2^128/span) carry the fractional part of x/span;
        // multiplying them back by span and keeping the high 64 bits
        // recovers the exact remainder (exhaustively property-tested
        // against `%` below).
        let lowbits = self.magic.wrapping_mul(u128::from(x));
        let bottom = (u128::from(lowbits as u64) * u128::from(self.span)) >> 64;
        let top = (lowbits >> 64) * u128::from(self.span);
        self.lo + ((top + bottom) >> 64) as u64
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of an inferable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the 64-bit seed.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; splitmix64
            // cannot produce four zero outputs from any seed, but keep
            // the guard for clarity.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differentiate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=1);
            assert!(w <= 1);
            let f = rng.gen_range(0.85f64..1.18);
            assert!((0.85..1.18).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn uniform_matches_gen_range_exactly() {
        // The whole point of `Uniform` is producing the *identical*
        // stream to `gen_range` (which reduces with `%`): divisor
        // shapes cover powers of two, odd, small, huge, and the actual
        // profile-derived spans (48 KB, 1536 KB, pool sizes).
        for span in [
            1u64,
            2,
            3,
            7,
            8,
            10,
            62,
            255,
            256,
            48 * 1024,
            96 * 1024 - 8,
            1536 * 1024,
            (1u64 << 32) - 1,
            (1u64 << 32) + 1,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let d = super::Uniform::new(0, span);
            let mut a = SmallRng::seed_from_u64(span);
            let mut b = SmallRng::seed_from_u64(span);
            for _ in 0..4_000 {
                assert_eq!(d.sample(&mut a), b.gen_range(0..span), "span {span}");
            }
        }
        let offset = super::Uniform::new(100, 162);
        let mut a = SmallRng::seed_from_u64(13);
        let mut b = SmallRng::seed_from_u64(13);
        for _ in 0..1_000 {
            assert_eq!(offset.sample(&mut a), b.gen_range(100u64..162));
        }
    }

    #[test]
    fn bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4000..6000).contains(&trues), "{trues}");
    }
}
