//! # xpscalar — Configurational Workload Characterization, in Rust
//!
//! Workspace facade re-exporting [`xps_core`]: the full reproduction of
//! Najaf-abadi & Rotenberg, *Configurational Workload
//! Characterization* (ISPASS 2008). See the crate-level documentation
//! of `xps_core` and the repository `README.md` for the guided tour.
//!
//! ```
//! use xpscalar::paper;
//! use xpscalar::communal::{best_combination, Merit};
//!
//! let m = paper::table5_matrix();
//! let pair = best_combination(&m, 2, Merit::HarmonicMean);
//! assert_eq!(pair.names, vec!["gcc".to_string(), "mcf".to_string()]);
//! ```

#![forbid(unsafe_code)]

pub use xps_core::*;
