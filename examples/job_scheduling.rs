//! Multithreaded contention on a heterogeneous CMP (the paper's §5.5
//! sketch, made runnable).
//!
//! ```text
//! cargo run --release --example job_scheduling
//! ```
//!
//! Jobs arrive (Poisson, optionally bursty), each an instance of one of
//! the eleven benchmarks; the CMP is the best dual-core design from the
//! complete search. Two policies contend: stall for the job's matched
//! core, or run on whichever core finishes it first.

use xpscalar::communal::{best_combination, simulate_jobs, JobPolicy, Merit, ScheduleOptions};
use xpscalar::paper;

fn main() {
    let m = paper::table5_matrix();
    let pair = best_combination(&m, 2, Merit::HarmonicMean);
    println!(
        "CMP under test: {} (complete-search best pair for harmonic-mean IPT)\n",
        pair.names.join(" + ")
    );

    println!(
        "{:>10}  {:>10}  {:>18}  {:>10}  {:>10}  {:>10}",
        "load", "burstiness", "policy", "turnaround", "wait", "redirects"
    );
    for rate in [0.5, 2.0, 4.0] {
        for burst in [0.0, 0.6] {
            for policy in [JobPolicy::StallForAssigned, JobPolicy::BestAvailable] {
                let mut o = ScheduleOptions::new(pair.cores.clone(), policy);
                o.arrival_rate = rate;
                o.burstiness = burst;
                o.jobs = 20_000;
                let s = simulate_jobs(&m, &o);
                println!(
                    "{rate:>10.1}  {burst:>10.1}  {:>18}  {:>10.3}  {:>10.3}  {:>9.1}%",
                    format!("{policy:?}"),
                    s.avg_turnaround,
                    s.avg_wait,
                    s.redirect_rate * 100.0
                );
            }
        }
    }
    println!(
        "\nAt light load the policies coincide (no queueing); under load, redirecting to the\n\
         best *available* core trades per-job slowdown for less waiting; burstiness raises\n\
         queueing for both and erodes the benefit of workload-to-core matching (§5.5)."
    );
}
