//! Designing a heterogeneous CMP by communal customization — the
//! paper's §5 workflow over its published cross-configuration matrix.
//!
//! ```text
//! cargo run --release --example heterogeneous_cmp
//! ```
//!
//! Walks the full decision: how much does heterogeneity buy over the
//! best homogeneous design, which pair of cores should be built under
//! each figure of merit, what the cheap greedy-surrogate shortcut
//! costs, and what subsetting would have cost.

use xpscalar::communal::{
    assign_surrogates, best_combination, ideal_performance, pitfall_experiment, Merit, Propagation,
};
use xpscalar::paper;

fn main() {
    let m = paper::table5_matrix();
    let (ideal_avg, ideal_har) = ideal_performance(&m);
    println!(
        "ideal (one customized core per workload): avg {ideal_avg:.2}, harmonic {ideal_har:.2}\n"
    );

    println!("complete search over core combinations:");
    for k in 1..=4 {
        for merit in Merit::ALL {
            let r = best_combination(&m, k, merit);
            println!(
                "  {k} core(s), by {:7}: {:40} avg {:.2}  har {:.2}",
                merit.label(),
                r.names.join(" + "),
                r.avg_ipt,
                r.har_ipt
            );
        }
    }

    let pair = best_combination(&m, 2, Merit::HarmonicMean);
    let single = best_combination(&m, 1, Merit::HarmonicMean);
    println!(
        "\na well-chosen 2-core heterogeneous CMP beats the best homogeneous design by {:.0}% in harmonic-mean IPT ({:.2} vs {:.2})",
        (pair.har_ipt / single.har_ipt - 1.0) * 100.0,
        pair.har_ipt,
        single.har_ipt
    );

    println!("\ngreedy surrogate shortcut (full propagation):");
    let s = assign_surrogates(&m, Propagation::ForwardBackward, 1);
    let finals: Vec<&str> = s
        .final_architectures
        .iter()
        .map(|&i| m.names()[i].as_str())
        .collect();
    println!(
        "  reduces to {:?}: harmonic {:.2} ({:.0}% below the ideal; the complete search is {:.0}% below)",
        finals,
        s.harmonic_ipt(&m),
        (1.0 - s.harmonic_ipt(&m) / ideal_har) * 100.0,
        (1.0 - pair.har_ipt / ideal_har) * 100.0
    );

    println!("\nthe subsetting pitfall (§5.3):");
    let r = pitfall_experiment(&m, "gzip", 2, Merit::HarmonicMean);
    println!(
        "  treating bzip/gzip as one benchmark changes the chosen pair from {} to {} and costs {:.1}% harmonic-mean IPT",
        r.full_choice.join(" + "),
        r.reduced_choice.join(" + "),
        r.loss * 100.0
    );
}
