//! Quickstart: simulate one benchmark on two configurations and
//! compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This exercises the three bottom layers of the stack: the workload
//! model (`xps-workload`), the timing simulator (`xps-sim`), and the
//! published configurations (`xps_core::paper`).

use xpscalar::paper;
use xpscalar::sim::{CoreConfig, Simulator};
use xpscalar::workload::{spec, TraceGenerator};

fn main() {
    let n = 200_000;
    let profile = spec::profile("gzip").expect("gzip is one of the eleven benchmarks");

    // The paper's Table 3 starting point, shared by every benchmark...
    let initial = CoreConfig::initial();
    let s0 = Simulator::new(&initial).run(TraceGenerator::new(profile.clone()), n);

    // ...and gzip's customized configuration from the paper's Table 4.
    let custom = paper::table4_config("gzip").expect("gzip is in Table 4");
    let s1 = Simulator::new(&custom).run(TraceGenerator::new(profile), n);

    println!("gzip on the initial (Table 3) configuration:");
    println!(
        "  IPC {:.3}  x  {:.2} GHz  =  {:.3} IPT   (mispredict {:.1}%, L1 miss {:.1}%)",
        s0.ipc(),
        initial.frequency_ghz(),
        s0.ipt(),
        s0.mispredict_rate() * 100.0,
        s0.l1.miss_ratio() * 100.0
    );
    println!("gzip on its customized (Table 4) configuration:");
    println!(
        "  IPC {:.3}  x  {:.2} GHz  =  {:.3} IPT   (mispredict {:.1}%, L1 miss {:.1}%)",
        s1.ipc(),
        custom.frequency_ghz(),
        s1.ipt(),
        s1.mispredict_rate() * 100.0,
        s1.l1.miss_ratio() * 100.0
    );
    println!(
        "\ncustomization speedup: {:.2}x in IPT",
        s1.ipt() / s0.ipt()
    );
}
