//! Configurational characterization from scratch: run the
//! simulated-annealing explorer on two raw-similar benchmarks and watch
//! their customized configurations diverge.
//!
//! ```text
//! cargo run --release --example design_exploration
//! ```
//!
//! The bzip/gzip pair is the paper's §5.3 case study: close in raw
//! characteristics, far apart configurationally. This example measures
//! both notions of distance on this repository's own substrate (takes
//! a minute or two: each annealing step is a timing simulation).

use xpscalar::explore::{Campaign, ExploreOptions};
use xpscalar::workload::{spec, Characterizer, TraceGenerator, KIVIAT_AXES};

fn main() {
    let names = ["bzip", "gzip"];
    let profiles: Vec<_> = names
        .iter()
        .map(|n| spec::profile(n).expect("known benchmark"))
        .collect();

    // Raw (microarchitecture-independent) characterization.
    println!("raw characteristics (0-10 Kiviat scale):");
    let mut vectors = Vec::new();
    for p in &profiles {
        let mut c = Characterizer::new();
        for op in TraceGenerator::new(p.clone()).take(120_000) {
            c.observe(&op);
        }
        let v = c.finish();
        println!("  {}:", p.name);
        for (axis, val) in KIVIAT_AXES.iter().zip(v.kiviat()) {
            println!("    {axis:<26} {val:.1}");
        }
        vectors.push(v);
    }
    println!(
        "\n  Euclidean distance bzip-gzip in raw space: {:.2} (small => classic subsetting calls them 'similar')",
        vectors[0].distance(&vectors[1])
    );

    // Configurational characterization: anneal a custom core for each.
    // The multi-start anneals and cross evaluations fan out over all
    // cores (jobs = 0); results are bit-identical to a serial run.
    println!("\nexploring customized configurations (simulated annealing)...");
    let mut opts = ExploreOptions::quick();
    opts.jobs = 0;
    let explorer = Campaign::new(opts);
    let result = explorer.explore(&profiles);
    for core in &result.cores {
        let c = &core.config;
        println!(
            "  {:5}: clock {:.2} ns, width {}, ROB {}, IQ {}, L1 {} KB ({} cy), L2 {} KB ({} cy)  ->  {:.2} IPT",
            c.name,
            c.clock_ns,
            c.width,
            c.rob_size,
            c.iq_size,
            c.l1.geometry.capacity_bytes() / 1024,
            c.l1.latency,
            c.l2.geometry.capacity_bytes() / 1024,
            c.l2.latency,
            core.ipt
        );
    }
    let s = &result.stats;
    println!(
        "\n  explored on {} worker(s); evaluation cache: {} hits / {} misses ({:.0}% hit rate)",
        s.workers,
        s.cache.hits,
        s.cache.misses,
        s.cache.hit_rate() * 100.0
    );
    println!(
        "\nraw similarity does not imply configurational similarity — the paper's central claim."
    );
}
